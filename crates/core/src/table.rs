//! The columnar trajectory table: the structure-of-arrays layout every
//! analysis stage reads instead of walking `ScanReport` structs.
//!
//! One parallel pass over the records (kernel `table_build`) flattens
//! every trajectory into flat columns — AV-Ranks, analysis-date
//! minutes, verdict bitmap words — indexed CSR-style by per-record
//! offsets, plus per-record precomputed envelopes (`p_min`/`p_max`,
//! hence Δ), dense file-type indices and the membership flags the
//! pipeline keeps re-deriving (`is_multi_report`, `is_stable`,
//! `is_fresh`, `is_top20`, `is_pe`, and *S* membership). The stages
//! then run as [`crate::par::map_ranges`] partition-reductions over
//! index ranges of this table: no stage allocates per record, and no
//! stage touches a `ScanReport` or `VerdictVec` again.
//!
//! Construction is deterministic at every worker count: partitions
//! cover contiguous record ranges and their column chunks are
//! concatenated in partition order, so the table — and therefore every
//! stage output derived from it — is bit-identical whether it was built
//! by 1 thread or 16.

use crate::par;
use crate::records::SampleRecord;
use vt_model::time::Timestamp;
use vt_model::{EngineId, FileType};
use vt_obs::Obs;

/// Per-record membership flags, packed into one byte.
mod flag {
    /// More than one report (§5.1 measurable subset).
    pub const MULTI: u8 = 1 << 0;
    /// Δ = 0 over a non-empty trajectory (§5.1 *stable*).
    pub const STABLE: u8 = 1 << 1;
    /// First submitted inside the observation window.
    pub const FRESH: u8 = 1 << 2;
    /// One of the top-20 named file types.
    pub const TOP20: u8 = 1 << 3;
    /// A PE (Win32 EXE/DLL) sample.
    pub const PE: u8 = 1 << 4;
    /// Member of the fresh dynamic dataset *S* (§5.3.1).
    pub const IN_S: u8 = 1 << 5;
}

/// The columnar (structure-of-arrays) view of a record set.
///
/// Per-report columns are indexed by *row*; record `i`'s rows are
/// `rows(i)` (CSR offsets). Per-record columns are indexed by record.
#[derive(Debug, Clone)]
pub struct TrajectoryTable {
    /// CSR offsets: record `i` owns rows `offsets[i]..offsets[i+1]`.
    offsets: Vec<u64>,
    /// Per-report AV-Rank (the `positives` field).
    positives: Vec<u32>,
    /// Per-report analysis date, in minutes since the epoch.
    date_min: Vec<i64>,
    /// Per-report verdict bitmap: active words.
    active: Vec<[u64; 2]>,
    /// Per-report verdict bitmap: detected words.
    detected: Vec<[u64; 2]>,
    /// Per-record dense file-type index.
    type_idx: Vec<u16>,
    /// Per-record minimum AV-Rank (0 for empty records).
    p_min: Vec<u32>,
    /// Per-record maximum AV-Rank (0 for empty records).
    p_max: Vec<u32>,
    /// Per-record membership flags.
    flags: Vec<u8>,
    /// The observation-window start the freshness flags were taken at.
    window_start: Timestamp,
}

/// One partition's column chunk during the build pass.
#[derive(Default)]
struct Chunk {
    counts: Vec<u32>,
    positives: Vec<u32>,
    date_min: Vec<i64>,
    active: Vec<[u64; 2]>,
    detected: Vec<[u64; 2]>,
    type_idx: Vec<u16>,
    p_min: Vec<u32>,
    p_max: Vec<u32>,
    flags: Vec<u8>,
}

impl TrajectoryTable {
    /// Builds the table with default parallelism and no observation.
    pub fn build(records: &[SampleRecord], window_start: Timestamp) -> Self {
        Self::build_with(records, window_start, par::default_workers(), Obs::noop())
    }

    /// Builds the table over `workers` threads under the `table_build`
    /// kernel. The result is bit-identical at every worker count.
    pub fn build_with(
        records: &[SampleRecord],
        window_start: Timestamp,
        workers: usize,
        obs: &Obs,
    ) -> Self {
        let ranges = par::partition_ranges(records.len() as u64, workers);
        let chunks = par::map_ranges_obs(&ranges, obs, "table_build", |_, range| {
            let mut c = Chunk::default();
            let slice = &records[range.start as usize..range.end as usize];
            c.counts.reserve(slice.len());
            c.type_idx.reserve(slice.len());
            c.flags.reserve(slice.len());
            for r in slice {
                let mut p_min = u32::MAX;
                let mut p_max = 0u32;
                for rep in &r.reports {
                    let p = rep.positives();
                    p_min = p_min.min(p);
                    p_max = p_max.max(p);
                    c.positives.push(p);
                    c.date_min.push(rep.analysis_date.0);
                    let (a, d) = rep.verdicts.raw();
                    c.active.push(a);
                    c.detected.push(d);
                }
                let n = r.reports.len();
                if n == 0 {
                    p_min = 0;
                    p_max = 0;
                }
                c.counts.push(n as u32);
                c.type_idx.push(r.meta.file_type.dense_index() as u16);
                c.p_min.push(p_min);
                c.p_max.push(p_max);

                let multi = n > 1;
                let stable = n > 0 && p_min == p_max;
                let fresh = r.meta.is_fresh(window_start);
                let top20 = r.meta.file_type.is_top20();
                let mut f = 0u8;
                f |= if multi { flag::MULTI } else { 0 };
                f |= if stable { flag::STABLE } else { 0 };
                f |= if fresh { flag::FRESH } else { 0 };
                f |= if top20 { flag::TOP20 } else { 0 };
                f |= if r.meta.file_type.is_pe() {
                    flag::PE
                } else {
                    0
                };
                if top20 && fresh && multi && !stable {
                    f |= flag::IN_S;
                }
                c.flags.push(f);
            }
            c
        });

        let rows: usize = chunks.iter().map(|c| c.positives.len()).sum();
        let mut t = Self {
            offsets: Vec::with_capacity(records.len() + 1),
            positives: Vec::with_capacity(rows),
            date_min: Vec::with_capacity(rows),
            active: Vec::with_capacity(rows),
            detected: Vec::with_capacity(rows),
            type_idx: Vec::with_capacity(records.len()),
            p_min: Vec::with_capacity(records.len()),
            p_max: Vec::with_capacity(records.len()),
            flags: Vec::with_capacity(records.len()),
            window_start,
        };
        t.offsets.push(0);
        let mut next = 0u64;
        for c in chunks {
            for n in c.counts {
                next += n as u64;
                t.offsets.push(next);
            }
            t.positives.extend(c.positives);
            t.date_min.extend(c.date_min);
            t.active.extend(c.active);
            t.detected.extend(c.detected);
            t.type_idx.extend(c.type_idx);
            t.p_min.extend(c.p_min);
            t.p_max.extend(c.p_max);
            t.flags.extend(c.flags);
        }
        debug_assert_eq!(t.positives.len() as u64, next);
        t
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// True when the table covers no records.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Total report rows across all records.
    pub fn report_rows(&self) -> usize {
        self.positives.len()
    }

    /// The row range of record `i`'s reports, analysis-date ascending.
    pub fn rows(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Record `i`'s report count.
    pub fn report_count(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Record `i`'s AV-Rank sequence, as a contiguous slice.
    pub fn positives_of(&self, i: usize) -> &[u32] {
        &self.positives[self.rows(i)]
    }

    /// Record `i`'s analysis dates in minutes, as a contiguous slice.
    pub fn dates_of(&self, i: usize) -> &[i64] {
        &self.date_min[self.rows(i)]
    }

    /// One row's analysis date.
    pub fn date(&self, row: usize) -> Timestamp {
        Timestamp(self.date_min[row])
    }

    /// One row's active-engine bitmap words.
    pub fn active_words(&self, row: usize) -> [u64; 2] {
        self.active[row]
    }

    /// One row's detected-engine bitmap words.
    pub fn detected_words(&self, row: usize) -> [u64; 2] {
        self.detected[row]
    }

    /// One engine's binary label in one row: `None` when the engine was
    /// inactive, else `Some(1)` for malicious / `Some(0)` for benign —
    /// exactly [`vt_model::Verdict::binary_label`] on the original
    /// verdict vector.
    pub fn binary_label(&self, row: usize, engine: EngineId) -> Option<u8> {
        let (w, b) = (engine.index() / 64, engine.index() % 64);
        if self.active[row][w] & (1u64 << b) == 0 {
            None
        } else {
            Some(((self.detected[row][w] >> b) & 1) as u8)
        }
    }

    /// Record `i`'s file type.
    pub fn file_type(&self, i: usize) -> FileType {
        FileType::from_dense_index(self.type_idx[i] as usize)
    }

    /// Record `i`'s dense file-type index.
    pub fn type_idx(&self, i: usize) -> usize {
        self.type_idx[i] as usize
    }

    /// Record `i`'s minimum AV-Rank (0 for empty records).
    pub fn p_min(&self, i: usize) -> u32 {
        self.p_min[i]
    }

    /// Record `i`'s maximum AV-Rank (0 for empty records).
    pub fn p_max(&self, i: usize) -> u32 {
        self.p_max[i]
    }

    /// `Δ = p_max − p_min`; `None` with no reports — exactly
    /// [`SampleRecord::delta_max`].
    pub fn delta_max(&self, i: usize) -> Option<u32> {
        (self.report_count(i) > 0).then(|| self.p_max[i] - self.p_min[i])
    }

    /// True when record `i` has more than one report.
    pub fn is_multi_report(&self, i: usize) -> bool {
        self.flags[i] & flag::MULTI != 0
    }

    /// True when record `i` is §5.1 *stable* (Δ = 0, non-empty).
    pub fn is_stable(&self, i: usize) -> bool {
        self.flags[i] & flag::STABLE != 0
    }

    /// True when record `i` was first submitted inside the window.
    pub fn is_fresh(&self, i: usize) -> bool {
        self.flags[i] & flag::FRESH != 0
    }

    /// True when record `i` is of a top-20 named type.
    pub fn is_top20(&self, i: usize) -> bool {
        self.flags[i] & flag::TOP20 != 0
    }

    /// True when record `i` is a PE (Win32 EXE/DLL) sample.
    pub fn is_pe(&self, i: usize) -> bool {
        self.flags[i] & flag::PE != 0
    }

    /// True when record `i` belongs to the fresh dynamic dataset *S*.
    pub fn in_s(&self, i: usize) -> bool {
        self.flags[i] & flag::IN_S != 0
    }

    /// The window start the freshness flags were computed against.
    pub fn window_start(&self) -> Timestamp {
        self.window_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Study;
    use vt_model::Verdict;
    use vt_sim::SimConfig;

    fn study() -> Study {
        Study::generate_with_workers(SimConfig::new(0x7AB1E, 3_000), 2)
    }

    #[test]
    fn columns_mirror_records() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let t = TrajectoryTable::build(records, ws);
        assert_eq!(t.len(), records.len());
        let rows: usize = records.iter().map(|r| r.reports.len()).sum();
        assert_eq!(t.report_rows(), rows);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(t.report_count(i), r.reports.len());
            assert_eq!(t.positives_of(i), r.positives().as_slice(), "record {i}");
            assert_eq!(t.delta_max(i), r.delta_max());
            assert_eq!(t.is_stable(i), r.is_stable());
            assert_eq!(t.is_multi_report(i), r.is_multi_report());
            assert_eq!(t.is_fresh(i), r.meta.is_fresh(ws));
            assert_eq!(t.is_top20(i), r.meta.file_type.is_top20());
            assert_eq!(t.is_pe(i), r.meta.file_type.is_pe());
            assert_eq!(t.file_type(i), r.meta.file_type);
            assert_eq!(t.type_idx(i), r.meta.file_type.dense_index());
            for (row, rep) in t.rows(i).zip(&r.reports) {
                assert_eq!(t.date(row), rep.analysis_date);
                let (a, d) = rep.verdicts.raw();
                assert_eq!(t.active_words(row), a);
                assert_eq!(t.detected_words(row), d);
            }
        }
    }

    #[test]
    fn build_is_identical_at_every_worker_count() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let base = TrajectoryTable::build_with(records, ws, 1, Obs::noop());
        for workers in [2usize, 3, 8] {
            let t = TrajectoryTable::build_with(records, ws, workers, Obs::noop());
            assert_eq!(t.offsets, base.offsets, "workers={workers}");
            assert_eq!(t.positives, base.positives, "workers={workers}");
            assert_eq!(t.date_min, base.date_min, "workers={workers}");
            assert_eq!(t.active, base.active, "workers={workers}");
            assert_eq!(t.detected, base.detected, "workers={workers}");
            assert_eq!(t.type_idx, base.type_idx, "workers={workers}");
            assert_eq!(t.p_min, base.p_min, "workers={workers}");
            assert_eq!(t.p_max, base.p_max, "workers={workers}");
            assert_eq!(t.flags, base.flags, "workers={workers}");
        }
    }

    #[test]
    fn binary_label_matches_verdicts() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let t = TrajectoryTable::build(records, ws);
        let engines = study.sim().fleet().engine_count();
        for (i, r) in records.iter().enumerate().take(200) {
            for (row, rep) in t.rows(i).zip(&r.reports) {
                for e in 0..engines {
                    let id = EngineId::new(e);
                    assert_eq!(
                        t.binary_label(row, id),
                        rep.verdicts.get(id).binary_label(),
                        "record {i} engine {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn in_s_matches_the_freshdyn_filters() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let t = TrajectoryTable::build(records, ws);
        for (i, r) in records.iter().enumerate() {
            let expect = r.meta.file_type.is_top20()
                && r.meta.is_fresh(ws)
                && r.is_multi_report()
                && !r.is_stable();
            assert_eq!(t.in_s(i), expect, "record {i}");
        }
        assert!((0..t.len()).any(|i| t.in_s(i)), "study too small for S");
    }

    #[test]
    fn table_build_kernel_is_instrumented() {
        let study = study();
        let obs = Obs::new();
        let _ = TrajectoryTable::build_with(
            study.records(),
            study.sim().config().window_start(),
            4,
            &obs,
        );
        let m = obs.snapshot();
        assert_eq!(m.counter("par/table_build/invocations"), Some(1));
        assert!(m.histogram("par/table_build/worker_busy_ns").is_some());
    }

    #[test]
    fn empty_record_set() {
        let t = TrajectoryTable::build(&[], Timestamp(0));
        assert!(t.is_empty());
        assert_eq!(t.report_rows(), 0);
    }

    /// `Verdict::binary_label` is the contract `binary_label` mirrors.
    #[test]
    fn binary_label_contract() {
        assert_eq!(Verdict::Malicious.binary_label(), Some(1));
        assert_eq!(Verdict::Benign.binary_label(), Some(0));
        assert_eq!(Verdict::Undetected.binary_label(), None);
    }
}
