//! The unified analysis API: one context, one trait, one span per
//! stage.
//!
//! The per-module `analyze` free functions grew drifted signatures —
//! `(records, s)`, `(records, s, engine_count)`, `(records, s, fleet)`,
//! `(records, s, max_days)` — which made instrumenting the pipeline
//! uniformly impossible. [`AnalysisCtx`] bundles everything any stage
//! can legitimately consume (the record set, its columnar
//! [`TrajectoryTable`] view, the fresh dynamic dataset *S*, the engine
//! fleet, the observation-window start, the worker count, and an
//! [`Obs`] handle), and [`Analysis`] is the common shape every stage
//! now presents:
//!
//! ```
//! use vt_dynamics::analysis::{Analysis, AnalysisCtx};
//! use vt_dynamics::{flips, freshdyn, pipeline::Study, TrajectoryTable};
//! use vt_sim::SimConfig;
//!
//! let study = Study::generate_with_workers(SimConfig::new(7, 500), 2);
//! let window_start = study.sim().config().window_start();
//! let table = TrajectoryTable::build(study.records(), window_start);
//! let s = freshdyn::build(study.records(), window_start);
//! let ctx = AnalysisCtx::new(
//!     study.records(),
//!     &table,
//!     &s,
//!     study.sim().fleet(),
//!     window_start,
//! );
//! let flips = flips::Flips.run(&ctx);
//! assert_eq!(flips.flips, flips.flips_up + flips.flips_down);
//! ```
//!
//! [`Analysis::run_timed`] wraps the stage in a `pipeline/<name>` span
//! on the context's `Obs`, which is how [`crate::pipeline`] produces
//! the per-stage timing breakdown. Instrumentation never feeds back
//! into the computation: a stage run under a live `Obs` returns results
//! bit-identical to the same stage under [`Obs::noop`].

use crate::freshdyn::FreshDynamic;
use crate::par;
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;
use vt_engines::EngineFleet;
use vt_model::time::Timestamp;
use vt_obs::Obs;

/// Everything an analysis stage may consume, in one place.
///
/// Construction is cheap (all borrows); [`AnalysisCtx::new`] defaults
/// to [`par::default_workers`] and a no-op `Obs`, with `with_workers` /
/// `with_obs` to override.
#[derive(Clone, Copy)]
pub struct AnalysisCtx<'a> {
    /// The full record set under analysis.
    pub records: &'a [SampleRecord],
    /// The columnar view of `records` every stage reads instead of the
    /// `ScanReport` structs.
    pub table: &'a TrajectoryTable,
    /// The fresh dynamic dataset *S* (§5.3.1) over `records`.
    pub s: &'a FreshDynamic,
    /// Engine roster and update schedules (§5.5 cause attribution).
    pub fleet: &'a EngineFleet,
    /// Start of the observation window (landscape accounting).
    pub window_start: Timestamp,
    /// Worker threads for parallel stages.
    pub workers: usize,
    /// Metrics sink; [`Obs::noop`] when not observing.
    pub obs: &'a Obs,
}

impl<'a> AnalysisCtx<'a> {
    /// A context with default parallelism and no observation.
    pub fn new(
        records: &'a [SampleRecord],
        table: &'a TrajectoryTable,
        s: &'a FreshDynamic,
        fleet: &'a EngineFleet,
        window_start: Timestamp,
    ) -> Self {
        Self {
            records,
            table,
            s,
            fleet,
            window_start,
            workers: par::default_workers(),
            obs: Obs::noop(),
        }
    }

    /// Overrides the worker count for parallel stages.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Attaches a live metrics sink.
    pub fn with_obs(mut self, obs: &'a Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Engine roster size (the fleet's, always).
    pub fn engine_count(&self) -> usize {
        self.fleet.engine_count()
    }
}

impl std::fmt::Debug for AnalysisCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisCtx")
            .field("records", &self.records.len())
            .field("table_rows", &self.table.report_rows())
            .field("s_samples", &self.s.len())
            .field("window_start", &self.window_start)
            .field("workers", &self.workers)
            .field("obs_enabled", &self.obs.is_enabled())
            .finish()
    }
}

/// One stage of the measurement pipeline, expressed as a fold over
/// segments of the record stream.
///
/// Implementors are unit-ish structs (`Flips`, `Causes`, …) living next
/// to the analysis they wrap; [`crate::pipeline::analyze_records`]
/// iterates a registry of them instead of hand-calling eight drifted
/// signatures. The contract:
///
/// * [`name`](Analysis::name) is stable and unique across the registry
///   — it keys the `pipeline/<name>` span and the
///   [`crate::pipeline::StudyResults::stage_timings`] rows;
/// * [`fold`](Analysis::fold) reduces one context (one *segment* of the
///   record stream, or the whole dataset) to a [`Partial`](Analysis::Partial);
/// * [`merge`](Analysis::merge) combines two partials whose underlying
///   records are ordered `a` before `b`. Merging per-segment partials
///   in segment order must equal folding the concatenated segments —
///   this is the algebra the incremental engine
///   ([`crate::incremental::IncrementalStudy`]) relies on, and it makes
///   incremental results **bit-identical** to the batch path by
///   construction;
/// * [`finish`](Analysis::finish) converts a partial into the stage's
///   final output;
/// * [`run`](Analysis::run) defaults to `finish(fold(ctx))`, so the
///   batch path *is* the one-segment case. Overrides (the fused
///   correlation kernel) must stay bit-identical to the default.
/// * Every method is deterministic in its inputs (worker count
///   included: parallel folds must merge associatively) and must not
///   let the `Obs` handle feed back into results.
pub trait Analysis {
    /// The stage's typed result.
    type Output;

    /// The stage's mergeable intermediate state: the exact accumulator
    /// its partition-reduction already used internally, now public so
    /// segment folds can be cached and merged across segments.
    type Partial: Clone;

    /// Stable, registry-unique stage name.
    fn name(&self) -> &'static str;

    /// Reduces the context's records to a mergeable partial.
    fn fold(&self, ctx: &AnalysisCtx) -> Self::Partial;

    /// Combines two partials; `a`'s records precede `b`'s in stream
    /// order. Must satisfy `merge(fold(x), fold(y)) == fold(x ++ y)`.
    fn merge(&self, a: Self::Partial, b: Self::Partial) -> Self::Partial;

    /// Converts an accumulated partial into the stage output.
    ///
    /// Borrows the partial: finishing is a read-only projection, so a
    /// cached accumulation (the incremental engine's, a serve slot's)
    /// can be finished on every snapshot without being cloned or
    /// consumed first. Implementations clone only the fields the
    /// output actually carries.
    fn finish(&self, partial: &Self::Partial) -> Self::Output;

    /// Runs the stage: the one-segment fold, finished.
    fn run(&self, ctx: &AnalysisCtx) -> Self::Output {
        self.finish(&self.fold(ctx))
    }

    /// Runs the stage inside a `pipeline/<name>` span on `ctx.obs`.
    fn run_timed(&self, ctx: &AnalysisCtx) -> Self::Output {
        let _span = ctx.obs.span(&format!("pipeline/{}", self.name()));
        self.run(ctx)
    }

    /// Folds one segment inside a `pipeline/<name>` span on `ctx.obs`
    /// (the incremental engine's per-segment timing hook).
    fn fold_timed(&self, ctx: &AnalysisCtx) -> Self::Partial {
        let _span = ctx.obs.span(&format!("pipeline/{}", self.name()));
        self.fold(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshdyn;
    use crate::pipeline::Study;
    use vt_sim::SimConfig;

    #[test]
    fn ctx_builds_and_overrides() {
        let study = Study::generate_with_workers(SimConfig::new(11, 200), 2);
        let window_start = study.sim().config().window_start();
        let table = TrajectoryTable::build(study.records(), window_start);
        let s = freshdyn::build(study.records(), window_start);
        let obs = Obs::new();
        let ctx = AnalysisCtx::new(
            study.records(),
            &table,
            &s,
            study.sim().fleet(),
            window_start,
        )
        .with_workers(3)
        .with_obs(&obs);
        assert_eq!(ctx.workers, 3);
        assert!(ctx.obs.is_enabled());
        assert_eq!(ctx.engine_count(), study.sim().fleet().engine_count());
        let dbg = format!("{ctx:?}");
        assert!(dbg.contains("workers: 3"), "{dbg}");
    }

    #[test]
    fn run_timed_records_a_span_without_changing_results() {
        let study = Study::generate_with_workers(SimConfig::new(11, 400), 2);
        let window_start = study.sim().config().window_start();
        let table = TrajectoryTable::build(study.records(), window_start);
        let s = freshdyn::build(study.records(), window_start);
        let base = AnalysisCtx::new(
            study.records(),
            &table,
            &s,
            study.sim().fleet(),
            window_start,
        );
        let obs = Obs::new();
        let quiet = crate::stability::Stability.run_timed(&base);
        let loud = crate::stability::Stability.run_timed(&base.with_obs(&obs));
        assert_eq!(format!("{quiet:?}"), format!("{loud:?}"));
        let snap = obs.snapshot();
        assert_eq!(snap.span("pipeline/stability").unwrap().count, 1);
    }
}
