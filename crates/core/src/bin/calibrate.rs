//! Calibration probe: prints the paper's headline statistics next to
//! the simulated values so the population/engine parameters can be
//! tuned. Not part of the public API surface; the polished
//! paper-vs-measured rendering lives in `vt-report`.
//!
//! Usage: `cargo run --release -p vt-dynamics --bin calibrate [samples] [seed]`

use vt_dynamics::Study;
use vt_sim::SimConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let samples: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let seed: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(0x7e57_5eed);

    let t0 = std::time::Instant::now();
    let study = Study::generate(SimConfig::new(seed, samples));
    eprintln!("generated {} samples in {:.1?}", samples, t0.elapsed());
    let t1 = std::time::Instant::now();
    let r = study.run();
    eprintln!("analyzed in {:.1?}", t1.elapsed());

    let pct = |x: f64| format!("{:.2}%", x * 100.0);
    println!("== dataset (§4) ==");
    println!(
        "reports/sample mean      paper 1.48   got {:.3}",
        r.dataset.total_reports() as f64 / r.dataset.total_samples() as f64
    );
    println!(
        "singleton samples        paper 88.81% got {}",
        pct(r.fig1.singleton)
    );
    println!(
        "fresh fraction           paper 91.76% got {}",
        pct(r.dataset.fresh_fraction())
    );
    println!(
        "max reports one sample   paper 64168  got {}",
        r.fig1.max_reports
    );

    println!("== stability (§5.1-5.2) ==");
    println!(
        "stable fraction          paper 49.90% got {}",
        pct(r.stability.stable_fraction())
    );
    println!(
        "stable at rank0          paper 66.36% got {}",
        pct(r.stability.stable_at_zero_fraction())
    );
    println!(
        "stable rank<=5           paper >80%   got {}",
        pct(r.stability.stable_le5_fraction())
    );
    println!(
        "stable benign (no 2scan) paper 81.7%  got {}",
        pct(r.stability.stable_benign_fraction_excluding_two_scans())
    );
    println!(
        "rank0 mean scans         paper 3.54   got {:.2}",
        r.stability.rank0_mean_scans()
    );
    println!(
        "rank>0 mean scans        paper 2.92   got {:.2}",
        r.stability.rank_pos_mean_scans()
    );
    println!(
        "span within 17d          paper ~50%   got {}",
        pct(r.stability.span_within_17d)
    );
    println!(
        "span within 350d         paper >93%   got {}",
        pct(r.stability.span_within_350d)
    );
    if let Some(b0) = r.stability.span_by_rank[0] {
        println!(
            "rank0 span mean/median   paper 20.34/14d got {:.1}/{:.1}",
            b0.mean, b0.median
        );
    }

    println!("== S + metrics (§5.3) ==");
    println!(
        "S samples/dynamic        {} / {}",
        r.s_samples, r.stability.dynamic
    );
    println!(
        "delta==0 adjacent        paper 35.49% got {}",
        pct(r.metrics.delta_zero_fraction)
    );
    println!(
        "Delta>2 fraction         paper ~50%   got {}",
        pct(r.metrics.delta_over_2_fraction)
    );
    println!(
        "Delta<=11 fraction       paper 90%    got {}",
        pct(r.metrics.delta_le_11_fraction)
    );
    for t in &r.metrics.per_type {
        if let (Some(adj), Some(ovl)) = (t.delta_adjacent, t.delta_overall) {
            println!(
                "  {:<20} δ mean {:.2} med {:.1} | Δ mean {:.2} med {:.1} (n={})",
                t.file_type.name(),
                adj.mean,
                adj.median,
                ovl.mean,
                ovl.median,
                ovl.n
            );
        }
    }
    println!("paper refs: DLL δ̄=3.25 max; JSON δ̄=0.29 min; Δ̄ JPEG 1.49 .. Win32EXE 14.08");

    println!("== intervals (§5.3.5) ==");
    print!("day-bin means: ");
    for day in [
        0usize, 1, 2, 4, 7, 14, 21, 30, 45, 60, 90, 120, 180, 240, 300, 360, 420,
    ] {
        if let Some(b) = r.intervals.by_day.get(day).and_then(|b| b.as_ref()) {
            print!("d{day}:{:.2}(n{}) ", b.mean, b.n);
        }
    }
    println!();
    if let Some(c) = r.intervals.correlation {
        println!(
            "spearman(day, mean diff) paper 0.9181 got {:.4} (p={:.3e}, n={})",
            c.rho, c.p_value, c.n
        );
    }
    if let Some(c) = r.intervals.correlation_median {
        println!(
            "spearman(day, median diff)             got {:.4} (p={:.3e})",
            c.rho, c.p_value
        );
    }
    println!(
        "window growth 1->3mo     paper 8.6%   got {}",
        pct(r.window_growth)
    );

    println!("== categories (§5.4) ==");
    let gmax = r.categories_all.gray_max().unwrap();
    let gmin = r.categories_all.gray_min().unwrap();
    println!(
        "overall gray max         paper 14.92%@24 got {}@{}",
        pct(gmax.gray),
        gmax.t
    );
    println!(
        "overall gray min         paper 3.82%@45  got {}@{}",
        pct(gmin.gray),
        gmin.t
    );
    print!("overall gray curve: ");
    for sh in r.categories_all.shares.iter().step_by(4) {
        print!("t{}:{} ", sh.t, pct(sh.gray));
    }
    println!();
    let pmax = r.categories_pe.gray_max().unwrap();
    let pmin = r.categories_pe.gray_min().unwrap();
    println!(
        "PE gray max              paper 16.41%@50 got {}@{}",
        pct(pmax.gray),
        pmax.t
    );
    println!(
        "PE gray min              paper 2.70%@3   got {}@{}",
        pct(pmin.gray),
        pmin.t
    );
    print!("PE gray curve: ");
    for sh in r.categories_pe.shares.iter().step_by(4) {
        print!("t{}:{} ", sh.t, pct(sh.gray));
    }
    println!();

    println!("== causes (§5.5) ==");
    println!(
        "update-coincident flips  paper ~60%   got {}",
        pct(r.causes.update_fraction())
    );
    println!(
        "gap consistency          paper 'usually' got {}",
        pct(r.causes.gap_consistency())
    );

    println!("== stabilization (§6) ==");
    for s in &r.rank_stabilization {
        println!(
            "r={} stabilized          paper {} got {} (within30d of stab: {})",
            s.r,
            ["10.9%", "55.1%", "69.58%", "77.84%", "83.52%", "88.11%"][s.r as usize],
            pct(s.stabilized_fraction()),
            pct(s.within_30d_fraction())
        );
    }
    for l in &r.label_stabilization_all {
        println!(
            "t={:<2} all: stab {} serial {:.1} days {:.1}",
            l.t,
            pct(l.stabilized_fraction()),
            l.mean_serial,
            l.mean_days
        );
    }
    for l in &r.label_stabilization_multi {
        println!(
            "t={:<2} >2scans: stab {} serial {:.1} days {:.1}",
            l.t,
            pct(l.stabilized_fraction()),
            l.mean_serial,
            l.mean_days
        );
    }

    println!("== flips (§7.1) ==");
    println!(
        "flips up/down ratio      paper 2.69   got {:.2} ({} up, {} down)",
        r.flips.flips_up as f64 / r.flips.flips_down.max(1) as f64,
        r.flips.flips_up,
        r.flips.flips_down
    );
    println!(
        "hazard flips             paper 9/16.8M got {}/{}",
        r.flips.hazard_flips, r.flips.flips
    );
    println!(
        "flips per report         paper 0.154  got {:.3}",
        r.flips.flips as f64 / r.flips.reports.max(1) as f64
    );
    let fleet = study.sim().fleet();
    let names = [
        "Arcabit",
        "F-Secure",
        "Lionic",
        "Microsoft",
        "Jiangmin",
        "AhnLab-V3",
    ];
    for n in names {
        let e = fleet.engine_by_name(n);
        println!(
            "  {:<12} overall flip ratio {:.4} | ELF {:.4} DEX {:.4}",
            n,
            r.flips.engine_ratio(e),
            r.flips.ratio(e, vt_model::FileType::ElfExecutable),
            r.flips.ratio(e, vt_model::FileType::Dex)
        );
    }

    println!("== correlation (§7.2) ==");
    let c = &r.correlation_global;
    println!(
        "strong pairs: {} | groups: {}",
        c.strong_pairs.len(),
        c.groups.len()
    );
    let pair = |a: &str, b: &str| c.rho_between(fleet.engine_by_name(a), fleet.engine_by_name(b));
    println!(
        "Paloalto-APEX            paper .9933 got {:.4}",
        pair("Paloalto", "APEX")
    );
    println!(
        "Avast-AVG                paper .9814 got {:.4}",
        pair("Avast", "AVG")
    );
    println!(
        "Webroot-CrowdStrike      paper .9754 got {:.4}",
        pair("Webroot", "CrowdStrike")
    );
    println!(
        "BitDefender-FireEye      paper .9520 got {:.4}",
        pair("BitDefender", "FireEye")
    );
    println!(
        "Avira-Cynet (global)     paper .9751 got {:.4}",
        pair("Avira", "Cynet")
    );
    println!(
        "Cyren-Fortinet (global)  paper weak  got {:.4}",
        pair("Cyren", "Fortinet")
    );
    println!(
        "Kaspersky-Zoner (indep)  expect weak got {:.4}",
        pair("Kaspersky", "Zoner")
    );
    for ct in &r.correlation_per_type {
        println!(
            "  scope {:?}: {} strong pairs, {} groups, {} rows",
            ct.scope.map(|f| f.name()),
            ct.strong_pairs.len(),
            ct.groups.len(),
            ct.rows
        );
    }
    // Win32EXE specifics.
    let exe = &r.correlation_per_type[0];
    let pe_pair =
        |a: &str, b: &str| exe.rho_between(fleet.engine_by_name(a), fleet.engine_by_name(b));
    println!(
        "Cyren-Fortinet (EXE)     paper strong got {:.4}",
        pe_pair("Cyren", "Fortinet")
    );
    println!(
        "Avira-Cynet (EXE)        paper weak   got {:.4}",
        pe_pair("Avira", "Cynet")
    );
}
