//! §5.3.1 — construction of the fresh dynamic dataset *S*.
//!
//! *S* contains samples that are (i) **fresh** — first submitted inside
//! the collection window, so their label history is observed from the
//! beginning; (ii) **dynamic** — Δ > 0 over multiple scans; and (iii)
//! of one of the **top-20 file types**. In the paper S holds 32,051,433
//! samples / 109,142,027 reports.

use crate::par;
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;
use vt_model::time::Timestamp;

/// The fresh dynamic dataset: indices into the record slice.
#[derive(Debug, Clone)]
pub struct FreshDynamic {
    /// Indices of the records in *S*.
    pub indices: Vec<usize>,
    /// Total reports across *S*.
    pub reports: u64,
}

impl FreshDynamic {
    /// Number of samples in *S*.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when *S* is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterates the records of *S*.
    pub fn iter<'a>(
        &'a self,
        records: &'a [SampleRecord],
    ) -> impl Iterator<Item = &'a SampleRecord> {
        self.indices.iter().map(move |&i| &records[i])
    }
}

/// Builds *S* from the full record set (columnar pass under the hood).
pub fn build(records: &[SampleRecord], window_start: Timestamp) -> FreshDynamic {
    let table = TrajectoryTable::build(records, window_start);
    build_from_table(&table, par::default_workers())
}

/// Builds *S* from the table's precomputed membership flags: a parallel
/// scan whose per-partition index lists concatenate in partition order,
/// so `indices` comes out ascending — identical to the serial filter —
/// at every worker count.
///
/// The scan reads the flag bytes 32 records at a time (four u64 word
/// loads, the 4-word kernel layout): each word tests eight IN_S bits at
/// once, and a block of 32 non-members costs four AND/compare pairs
/// instead of 32 byte loads. Members are extracted in ascending order
/// via `trailing_zeros`, so the emitted indices are exactly the
/// one-byte-at-a-time scan's.
pub fn build_from_table(table: &TrajectoryTable, workers: usize) -> FreshDynamic {
    // Bit 5 (IN_S) of every byte lane in a u64 word.
    let lanes = u64::from_ne_bytes([TrajectoryTable::IN_S_BIT; 8]);
    let ranges = par::partition_ranges(table.len() as u64, workers);
    let parts = par::map_ranges(&ranges, |_, range| {
        let start = range.start as usize;
        let slice = &table.flags_raw()[start..range.end as usize];
        let mut indices = Vec::new();
        let mut reports = 0u64;
        let push = |i: usize, indices: &mut Vec<usize>, reports: &mut u64| {
            indices.push(i);
            *reports += table.report_count(i) as u64;
        };
        let mut k = 0usize;
        while k + 32 <= slice.len() {
            let mut words = [0u64; 4];
            for (j, w) in words.iter_mut().enumerate() {
                let bytes: [u8; 8] = slice[k + j * 8..k + j * 8 + 8].try_into().expect("8 bytes");
                // from_le so byte j of the slice owns bits 8j..8j+8
                // regardless of host endianness.
                *w = u64::from_le_bytes(bytes) & lanes;
            }
            for (j, mut w) in words.into_iter().enumerate() {
                // At most one bit per byte lane is set, so clearing the
                // lowest set bit steps one member byte at a time,
                // ascending.
                while w != 0 {
                    let byte = (w.trailing_zeros() / 8) as usize;
                    push(start + k + j * 8 + byte, &mut indices, &mut reports);
                    w &= w - 1;
                }
            }
            k += 32;
        }
        for (tail, &f) in slice.iter().enumerate().skip(k) {
            if f & TrajectoryTable::IN_S_BIT != 0 {
                push(start + tail, &mut indices, &mut reports);
            }
        }
        (indices, reports)
    });
    let mut indices = Vec::with_capacity(parts.iter().map(|(i, _)| i.len()).sum());
    let mut reports = 0u64;
    for (part, r) in parts {
        indices.extend(part);
        reports += r;
    }
    FreshDynamic { indices, reports }
}

/// The original serial filter, kept as the bit-identity reference for
/// [`build_from_table`].
#[cfg(test)]
pub(crate) fn build_serial(records: &[SampleRecord], window_start: Timestamp) -> FreshDynamic {
    let mut indices = Vec::new();
    let mut reports = 0u64;
    for (i, r) in records.iter().enumerate() {
        if !r.meta.file_type.is_top20() {
            continue;
        }
        if !r.meta.is_fresh(window_start) {
            continue;
        }
        if !r.is_multi_report() || r.is_stable() {
            continue;
        }
        indices.push(i);
        reports += r.report_count() as u64;
    }
    FreshDynamic { indices, reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Duration};
    use vt_model::{
        EngineId, FileType, GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict,
        VerdictVec,
    };

    fn record(i: u64, ft: FileType, fresh: bool, positives_seq: &[u32]) -> SampleRecord {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = if fresh {
            window + Duration::days(30)
        } else {
            window - Duration::days(30)
        };
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: ft,
            origin: first - Duration::days(2),
            first_submission: first,
            truth: GroundTruth::Benign,
        };
        let reports = positives_seq
            .iter()
            .enumerate()
            .map(|(k, &p)| {
                let mut verdicts = VerdictVec::new(70);
                for e in 0..p {
                    verdicts.set(EngineId(e as u8), Verdict::Malicious);
                }
                ScanReport {
                    sample: meta.hash,
                    file_type: FileType::Pdf,
                    analysis_date: window + Duration::days(31 + k as i64),
                    last_submission_date: first,
                    times_submitted: 1,
                    kind: ReportKind::Upload,
                    verdicts,
                }
            })
            .collect();
        SampleRecord::new(meta, reports)
    }

    #[test]
    fn applies_all_three_filters() {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let records = vec![
            record(0, FileType::Win32Exe, true, &[1, 3]),  // in S
            record(1, FileType::Win32Exe, false, &[1, 3]), // not fresh
            record(2, FileType::Other(0), true, &[1, 3]),  // not top-20
            record(3, FileType::Null, true, &[1, 3]),      // not top-20
            record(4, FileType::Win32Exe, true, &[3, 3]),  // stable
            record(5, FileType::Win32Exe, true, &[3]),     // single report
            record(6, FileType::Pdf, true, &[0, 2, 1]),    // in S
        ];
        let s = build(&records, window);
        assert_eq!(s.indices, vec![0, 6]);
        assert_eq!(s.reports, 5);
        assert_eq!(s.len(), 2);
        let collected: Vec<u64> = s.iter(&records).map(|r| r.meta.hash.seed64()).collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn table_build_matches_serial_reference_at_every_worker_count() {
        use crate::pipeline::Study;
        use vt_sim::SimConfig;

        let study = Study::generate_with_workers(SimConfig::new(0x5D, 3_000), 2);
        let ws = study.sim().config().window_start();
        let serial = build_serial(study.records(), ws);
        let table = TrajectoryTable::build(study.records(), ws);
        for workers in [1usize, 2, 3, 8] {
            let s = build_from_table(&table, workers);
            assert_eq!(s.indices, serial.indices, "workers={workers}");
            assert_eq!(s.reports, serial.reports, "workers={workers}");
        }
        assert!(!serial.is_empty(), "study too small to exercise S");
    }
}
