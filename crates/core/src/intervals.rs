//! §5.3.5 — AV-Rank difference vs. scan interval (Obs. 5, Fig. 7).
//!
//! For every pair of scans of each sample in *S*, the difference in
//! AV-Rank and the time interval between them. Differences are grouped
//! by whole-day interval; the paper's statistical evidence is the
//! Spearman correlation between the interval (in days) and the mean
//! difference at that interval — ρ = 0.9181, p = 2.6083e-167 (the
//! p-value's magnitude tells us the correlation was computed over the
//! ~419 day-bins, not the raw pairs).
//!
//! Samples with pathological scan counts (monitoring rigs with
//! thousands of scans) would contribute O(n²) pairs; we cap the pairs
//! per sample by striding through at most [`MAX_SCANS_PER_SAMPLE`]
//! evenly spaced scans — a documented deviation that preserves each
//! sample's time coverage.

use crate::analysis::{Analysis, AnalysisCtx};
use crate::freshdyn::FreshDynamic;
use crate::par;
#[cfg(test)]
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;
use vt_model::time::Duration;
use vt_stats::{spearman_with_p, BoxplotSummary, SpearmanResult};

/// |Δp| between two scans is bounded by the roster (≤ 128 engines), so
/// each day bin is a `[u64; 129]` counting row instead of a `Vec<f64>`
/// of raw pairs.
const DIFF_BOUND: usize = 129;

/// Cap on scans considered per sample when forming pairs.
pub const MAX_SCANS_PER_SAMPLE: usize = 25;

/// Minimum pairs a day bin needs to participate in the Spearman test.
pub const MIN_PAIRS_PER_BIN: usize = 100;

/// Outcome of the interval analysis.
#[derive(Debug, Clone)]
pub struct IntervalAnalysis {
    /// Per-day box summaries of |Δp| (index = interval in whole days);
    /// `None` where no pair landed.
    pub by_day: Vec<Option<BoxplotSummary>>,
    /// Spearman of (day, mean |Δp| at that day).
    pub correlation: Option<SpearmanResult>,
    /// Spearman of (day, median |Δp| at that day) — robust to the
    /// composition of heavy-scanned samples within bins.
    pub correlation_median: Option<SpearmanResult>,
    /// Total pairs examined (including pairs beyond `max_days`).
    pub pairs: u64,
    /// Pairs whose interval exceeded `max_days`. Excluded from the day
    /// bins and the Spearman input — the old behavior clamped them into
    /// the top bin, polluting its boxplot and the correlation.
    pub pairs_beyond_max: u64,
    /// Largest interval observed, in days — the true maximum, including
    /// pairs beyond `max_days`.
    pub max_interval_days: u32,
}

/// §5.3.5 interval-analysis stage: run via [`Analysis::run`] with an
/// [`AnalysisCtx`]. `max_days` bounds the day-bin axis; the pipeline
/// default ([`Intervals::default`]) is the paper's 430.
#[derive(Debug, Clone, Copy)]
pub struct Intervals {
    /// Day-bin axis bound; longer pairs are accounted, not clamped.
    pub max_days: usize,
}

impl Default for Intervals {
    fn default() -> Self {
        Self { max_days: 430 }
    }
}

impl Analysis for Intervals {
    type Output = IntervalAnalysis;
    type Partial = IntervalPartial;

    fn name(&self) -> &'static str {
        "intervals"
    }

    fn fold(&self, ctx: &AnalysisCtx) -> IntervalPartial {
        fold_columnar(ctx.table, ctx.s, self.max_days, ctx)
    }

    fn merge(&self, mut a: IntervalPartial, b: IntervalPartial) -> IntervalPartial {
        a.merge(&b);
        a
    }

    fn finish(&self, acc: &IntervalPartial) -> IntervalAnalysis {
        finish(acc, self.max_days)
    }
}

/// Mergeable accumulator of the §5.3.5 fold ([`Intervals`]'s
/// [`Analysis::Partial`]): a flattened `(max_days + 1) × DIFF_BOUND`
/// counting matrix plus the pair counters. Counts and totals merge by
/// addition, `max_interval` by max — both partials must come from the
/// same `max_days` configuration.
#[derive(Debug, Clone)]
pub struct IntervalPartial {
    day_counts: Vec<u64>,
    pairs: u64,
    pairs_beyond_max: u64,
    max_interval: u32,
}

impl IntervalPartial {
    fn new(max_days: usize) -> Self {
        Self {
            day_counts: vec![0; (max_days + 1) * DIFF_BOUND],
            pairs: 0,
            pairs_beyond_max: 0,
            max_interval: 0,
        }
    }

    pub(crate) fn merge(&mut self, other: &IntervalPartial) {
        assert_eq!(
            self.day_counts.len(),
            other.day_counts.len(),
            "interval partials from different max_days configurations"
        );
        for (a, b) in self.day_counts.iter_mut().zip(&other.day_counts) {
            *a += b;
        }
        self.pairs += other.pairs;
        self.pairs_beyond_max += other.pairs_beyond_max;
        self.max_interval = self.max_interval.max(other.max_interval);
    }
}

/// Walks one partition's samples and feeds every in-axis pair's flat
/// bin index (`days * DIFF_BOUND + |Δp|`) to `bin`; returns the
/// partition's `(pairs, pairs_beyond_max, max_interval)` scalars.
fn walk_pairs(
    table: &TrajectoryTable,
    s: &FreshDynamic,
    range: std::ops::Range<u64>,
    max_days: usize,
    bin: &mut impl FnMut(u32),
) -> (u64, u64, u32) {
    let mut pairs = 0u64;
    let mut beyond = 0u64;
    let mut max_interval = 0u32;
    let mut scans: Vec<(i64, u32)> = Vec::with_capacity(MAX_SCANS_PER_SAMPLE);
    for &rec in &s.indices[range.start as usize..range.end as usize] {
        strided_columns(
            table.dates_of(rec),
            table.positives_of(rec),
            MAX_SCANS_PER_SAMPLE,
            &mut scans,
        );
        for i in 0..scans.len() {
            for j in (i + 1)..scans.len() {
                let (t1, p1) = scans[i];
                let (t2, p2) = scans[j];
                let days = Duration::minutes(t2 - t1).as_days().unsigned_abs();
                pairs += 1;
                max_interval = max_interval.max(days.min(u32::MAX as u64) as u32);
                if days > max_days as u64 {
                    beyond += 1;
                    continue;
                }
                bin((days as usize * DIFF_BOUND + p1.abs_diff(p2) as usize) as u32);
            }
        }
    }
    (pairs, beyond, max_interval)
}

/// Per-partition pair output: bin indices, compact until the partition
/// holds enough pairs that one dense counting matrix is smaller.
enum PartBins {
    /// Raw flat bin indices, one `u32` per in-axis pair.
    Compact(Vec<u32>),
    /// Dense `(max_days + 1) × DIFF_BOUND` counting matrix (the spill
    /// representation for pair-heavy partitions).
    Dense(Vec<u64>),
}

/// The multi-worker interval fold used to anti-scale (1.63 ms at 1
/// worker → 4.55 ms at 8 in `BENCH_pipeline.json`): every worker
/// zeroed its own dense `(max_days + 1) × DIFF_BOUND` counting matrix
/// (~445 KB at the default 430-day axis) and the main thread then
/// merged the full matrices serially — ~56 K u64 adds per partition —
/// so adding workers added fixed allocation + merge cost that dwarfed
/// the actual pair counting. Workers now emit the raw bin indices of
/// their (typically few) pairs and the main thread counts them into
/// **one** dense matrix; a pair-heavy partition spills to a dense
/// matrix of its own once the compact form would outgrow it, bounding
/// memory at the old per-worker footprint. Either way every bin count
/// is the same u64 sum, so the folded partial is bit-identical to the
/// old merge at every worker count.
fn fold_columnar(
    table: &TrajectoryTable,
    s: &FreshDynamic,
    max_days: usize,
    ctx: &AnalysisCtx,
) -> IntervalPartial {
    let ranges = par::partition_ranges(s.indices.len() as u64, ctx.workers);
    if ranges.len() <= 1 {
        // Single partition: count straight into the dense matrix that
        // becomes the partial — no intermediate representation at all.
        let mut parts = par::map_ranges_obs(&ranges, ctx.obs, "intervals", |_, range| {
            let mut acc = IntervalPartial::new(max_days);
            let (pairs, beyond, max_interval) = walk_pairs(table, s, range, max_days, &mut |b| {
                acc.day_counts[b as usize] += 1;
            });
            acc.pairs = pairs;
            acc.pairs_beyond_max = beyond;
            acc.max_interval = max_interval;
            acc
        });
        return parts
            .pop()
            .unwrap_or_else(|| IntervalPartial::new(max_days));
    }
    let dense_len = (max_days + 1) * DIFF_BOUND;
    // Past this many pairs the compact u32 list outweighs one dense
    // u64 matrix, so the partition spills to dense counting.
    let spill_at = 2 * dense_len;
    let parts = par::map_ranges_obs(&ranges, ctx.obs, "intervals", |_, range| {
        let mut bins = PartBins::Compact(Vec::new());
        let (pairs, beyond, max_interval) =
            walk_pairs(table, s, range, max_days, &mut |b| match &mut bins {
                PartBins::Compact(v) if v.len() < spill_at => v.push(b),
                PartBins::Compact(v) => {
                    let mut dense = vec![0u64; dense_len];
                    for &x in v.iter() {
                        dense[x as usize] += 1;
                    }
                    dense[b as usize] += 1;
                    bins = PartBins::Dense(dense);
                }
                PartBins::Dense(d) => d[b as usize] += 1,
            });
        (bins, pairs, beyond, max_interval)
    });
    let mut acc = IntervalPartial::new(max_days);
    for (bins, pairs, beyond, max_interval) in parts {
        match bins {
            PartBins::Compact(v) => {
                for b in v {
                    acc.day_counts[b as usize] += 1;
                }
            }
            PartBins::Dense(d) => {
                for (a, b) in acc.day_counts.iter_mut().zip(&d) {
                    *a += b;
                }
            }
        }
        acc.pairs += pairs;
        acc.pairs_beyond_max += beyond;
        acc.max_interval = acc.max_interval.max(max_interval);
    }
    acc
}

/// Turns the merged accumulator into the published analysis.
fn finish(acc: &IntervalPartial, max_days: usize) -> IntervalAnalysis {
    debug_assert_eq!(acc.day_counts.len(), (max_days + 1) * DIFF_BOUND);
    let by_day: Vec<Option<BoxplotSummary>> = (0..=max_days)
        .map(|d| BoxplotSummary::from_counts(&acc.day_counts[d * DIFF_BOUND..(d + 1) * DIFF_BOUND]))
        .collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut ys_med = Vec::new();
    for (day, summary) in by_day.iter().enumerate() {
        if let Some(s) = summary {
            if s.n >= MIN_PAIRS_PER_BIN {
                xs.push(day as f64);
                ys.push(s.mean);
                ys_med.push(s.median);
            }
        }
    }
    IntervalAnalysis {
        by_day,
        correlation: spearman_with_p(&xs, &ys),
        correlation_median: spearman_with_p(&xs, &ys_med),
        pairs: acc.pairs,
        pairs_beyond_max: acc.pairs_beyond_max,
        max_interval_days: acc.max_interval,
    }
}

/// [`strided`] over the table's date/rank columns, reusing `out`.
fn strided_columns(dates: &[i64], positives: &[u32], cap: usize, out: &mut Vec<(i64, u32)>) {
    out.clear();
    let n = dates.len();
    if n <= cap {
        out.extend(dates.iter().copied().zip(positives.iter().copied()));
        return;
    }
    for k in 0..cap {
        let idx = k * (n - 1) / (cap - 1);
        out.push((dates[idx], positives[idx]));
    }
    out.dedup_by_key(|(t, _)| *t);
}

#[cfg(test)]
pub(crate) fn analyze_impl(
    records: &[SampleRecord],
    s: &FreshDynamic,
    max_days: usize,
) -> IntervalAnalysis {
    let mut per_day: Vec<Vec<f64>> = vec![Vec::new(); max_days + 1];
    let mut pairs = 0u64;
    let mut pairs_beyond_max = 0u64;
    let mut max_interval = 0u32;
    for r in s.iter(records) {
        let scans = strided(&r.reports, MAX_SCANS_PER_SAMPLE);
        for i in 0..scans.len() {
            for j in (i + 1)..scans.len() {
                let (t1, p1) = scans[i];
                let (t2, p2) = scans[j];
                let days = (t2 - t1).as_days().unsigned_abs();
                pairs += 1;
                max_interval = max_interval.max(days.min(u32::MAX as u64) as u32);
                if days > max_days as u64 {
                    // Beyond the bin axis: counted, never clamped into
                    // the top bin.
                    pairs_beyond_max += 1;
                    continue;
                }
                let diff = p1.abs_diff(p2) as f64;
                per_day[days as usize].push(diff);
            }
        }
    }
    let by_day: Vec<Option<BoxplotSummary>> = per_day
        .iter()
        .map(|v| BoxplotSummary::from_unsorted(v))
        .collect();
    // Correlate day index against the mean difference of that day. Bins
    // with very few pairs are dominated by sampling noise (the paper's
    // bins hold millions of pairs each); require a minimum population.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut ys_med = Vec::new();
    for (day, summary) in by_day.iter().enumerate() {
        if let Some(s) = summary {
            if s.n >= MIN_PAIRS_PER_BIN {
                xs.push(day as f64);
                ys.push(s.mean);
                ys_med.push(s.median);
            }
        }
    }
    let correlation = spearman_with_p(&xs, &ys);
    let correlation_median = spearman_with_p(&xs, &ys_med);
    IntervalAnalysis {
        by_day,
        correlation,
        correlation_median,
        pairs,
        pairs_beyond_max,
        max_interval_days: max_interval,
    }
}

/// Picks at most `cap` evenly spaced scans, always keeping the first
/// and last.
#[cfg(test)]
fn strided(reports: &[vt_model::ScanReport], cap: usize) -> Vec<(vt_model::Timestamp, u32)> {
    let n = reports.len();
    if n <= cap {
        return reports
            .iter()
            .map(|r| (r.analysis_date, r.positives()))
            .collect();
    }
    let mut out = Vec::with_capacity(cap);
    for k in 0..cap {
        let idx = k * (n - 1) / (cap - 1);
        let r = &reports[idx];
        out.push((r.analysis_date, r.positives()));
    }
    out.dedup_by_key(|(t, _)| *t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshdyn;
    use vt_model::time::{Date, Duration, Timestamp};
    use vt_model::{
        EngineId, FileType, GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict,
        VerdictVec,
    };

    fn record(i: u64, positives_at_days: &[(i64, u32)]) -> SampleRecord {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = window + Duration::days(5);
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: FileType::Win32Exe,
            origin: first,
            first_submission: first,
            truth: GroundTruth::Benign,
        };
        let reports = positives_at_days
            .iter()
            .map(|&(day, p)| {
                let mut verdicts = VerdictVec::new(70);
                for e in 0..p {
                    verdicts.set(EngineId(e as u8), Verdict::Malicious);
                }
                ScanReport {
                    sample: meta.hash,
                    file_type: FileType::Pdf,
                    analysis_date: first + Duration::days(day),
                    last_submission_date: first,
                    times_submitted: 1,
                    kind: ReportKind::Upload,
                    verdicts,
                }
            })
            .collect();
        SampleRecord::new(meta, reports)
    }

    #[test]
    fn pairs_land_in_day_bins() {
        // Ramp: p grows 1/day. Pairs at interval d have diff d. Enough
        // identical samples that each bin clears MIN_PAIRS_PER_BIN.
        let records: Vec<SampleRecord> = (0..120)
            .map(|i| record(i, &[(0, 0), (1, 1), (2, 2), (3, 3)]))
            .collect();
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        let a = analyze_impl(&records, &s, 30);
        assert_eq!(a.pairs, 6 * 120);
        assert_eq!(a.max_interval_days, 3);
        for d in 1..=3usize {
            let b = a.by_day[d].expect("bin");
            assert!((b.mean - d as f64).abs() < 1e-12, "day {d}");
        }
        // Perfect monotone relation → ρ = 1.
        let c = a.correlation.unwrap();
        assert_eq!(c.rho, 1.0);
    }

    #[test]
    fn strided_caps_pairs() {
        let scans: Vec<(i64, u32)> = (0..500).map(|d| (d, (d % 60) as u32)).collect();
        let records = vec![record(0, &scans)];
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        let a = analyze_impl(&records, &s, 600);
        let cap = MAX_SCANS_PER_SAMPLE as u64;
        assert!(a.pairs <= cap * (cap - 1) / 2);
        // First and last scans survive the stride.
        assert_eq!(a.max_interval_days, 499);
    }

    /// Regression for the silent top-bin clamp: a pair at `max_days +
    /// k` must not shift bin `max_days`'s statistics — it is counted in
    /// `pairs_beyond_max` instead, and `max_interval_days` reports the
    /// true (unclamped) maximum.
    #[test]
    fn beyond_max_pairs_do_not_pollute_top_bin() {
        let max_days = 5usize;
        // 120 clean samples put pairs with |Δp| = 5 into bin 5.
        let mut records: Vec<SampleRecord> =
            (0..120).map(|i| record(i, &[(0, 0), (5, 5)])).collect();
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let clean = analyze_impl(&records, &freshdyn::build(&records, window), max_days);
        let clean_top = clean.by_day[max_days].expect("top bin populated");
        assert_eq!(clean.pairs_beyond_max, 0);
        assert_eq!(clean.max_interval_days, 5);

        // Add one sample whose pair spans max_days + 7 with |Δp| = 4 —
        // under the old clamp it landed in bin 5 and dragged its mean.
        records.push(record(120, &[(0, 0), (12, 4)]));
        let s = freshdyn::build(&records, window);
        let a = analyze_impl(&records, &s, max_days);
        let top = a.by_day[max_days].expect("top bin populated");
        assert_eq!(top.n, clean_top.n, "outlier pair stays out of the bin");
        assert!(
            (top.mean - clean_top.mean).abs() < 1e-12,
            "top-bin mean unchanged: {} vs {}",
            top.mean,
            clean_top.mean
        );
        assert_eq!(a.pairs_beyond_max, 1);
        assert_eq!(a.pairs, clean.pairs + 1, "overflow pair still examined");
        assert_eq!(a.max_interval_days, 12, "true maximum, not the clamp");
    }

    #[test]
    fn empty_s_is_graceful() {
        let records: Vec<SampleRecord> = vec![];
        let s = FreshDynamic {
            indices: vec![],
            reports: 0,
        };
        let a = analyze_impl(&records, &s, 10);
        assert_eq!(a.pairs, 0);
        assert!(a.correlation.is_none());
        assert!(a.correlation_median.is_none());
    }
}
