//! §7.1 — per-engine label flips (Obs. 10, Fig. 10).
//!
//! An engine's label sequence for a sample is its consecutive *active*
//! labels (`Undetected` scans are skipped — counting them as benign
//! would manufacture hazard flips that the real data does not contain).
//! A **flip** is `0→1` or `1→0` between consecutive labels; a **hazard
//! flip** is `0→1→0` or `1→0→1` over three consecutive labels. The
//! paper counts 16,838,818 flips (12.27 M up / 4.57 M down ≈ 2.7 : 1)
//! and — against prior work — only **9** hazard flips.
//!
//! Fig. 10's flip ratio for (engine, type) is flips per adjacent label
//! pair, i.e. `flips / opportunities`.

use crate::analysis::{Analysis, AnalysisCtx};
use crate::freshdyn::FreshDynamic;
use crate::par;
#[cfg(test)]
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;
use vt_model::{EngineId, FileType};

/// Flip accounting for one (engine, file-type) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlipCell {
    /// Adjacent active-label pairs observed.
    pub opportunities: u64,
    /// Label changes.
    pub flips: u64,
}

impl FlipCell {
    /// Fig. 10's flip ratio.
    pub fn ratio(&self) -> f64 {
        if self.opportunities == 0 {
            0.0
        } else {
            self.flips as f64 / self.opportunities as f64
        }
    }
}

/// Outcome of the flip analysis.
#[derive(Debug, Clone)]
pub struct FlipAnalysis {
    /// Engines analyzed.
    pub engine_count: usize,
    /// Cells: `matrix[engine][type_dense_index]` over the top-20 types.
    pub matrix: Vec<[FlipCell; 20]>,
    /// Total flips.
    pub flips: u64,
    /// 0→1 flips.
    pub flips_up: u64,
    /// 1→0 flips.
    pub flips_down: u64,
    /// Hazard flips (0→1→0 or 1→0→1 over consecutive labels).
    pub hazard_flips: u64,
    /// Reports contributing label observations.
    pub reports: u64,
}

impl FlipAnalysis {
    /// Flip ratio of one engine on one type.
    pub fn ratio(&self, engine: EngineId, ft: FileType) -> f64 {
        self.matrix[engine.index()][ft.dense_index()].ratio()
    }

    /// An engine's flip ratio across all types.
    pub fn engine_ratio(&self, engine: EngineId) -> f64 {
        let mut total = FlipCell::default();
        for cell in &self.matrix[engine.index()] {
            total.opportunities += cell.opportunities;
            total.flips += cell.flips;
        }
        total.ratio()
    }

    /// Engines ranked by overall flip ratio, descending.
    pub fn ranked_engines(&self) -> Vec<(EngineId, f64)> {
        let mut v: Vec<(EngineId, f64)> = (0..self.engine_count)
            .map(|e| (EngineId::new(e), self.engine_ratio(EngineId::new(e))))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// An all-zero analysis over `engine_count` engines — what a study
    /// with no folded segments reports (and merge's identity element).
    pub fn empty(engine_count: usize) -> Self {
        Self {
            engine_count,
            matrix: vec![[FlipCell::default(); 20]; engine_count],
            flips: 0,
            flips_up: 0,
            flips_down: 0,
            hazard_flips: 0,
            reports: 0,
        }
    }

    pub(crate) fn merge(&mut self, other: &FlipAnalysis) {
        debug_assert_eq!(self.engine_count, other.engine_count);
        for (mine, theirs) in self.matrix.iter_mut().zip(&other.matrix) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                a.opportunities += b.opportunities;
                a.flips += b.flips;
            }
        }
        self.flips += other.flips;
        self.flips_up += other.flips_up;
        self.flips_down += other.flips_down;
        self.hazard_flips += other.hazard_flips;
        self.reports += other.reports;
    }
}

/// §7.1 flip-analysis stage: run via [`Analysis::run`] with an
/// [`AnalysisCtx`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Flips;

impl Analysis for Flips {
    type Output = FlipAnalysis;
    type Partial = FlipAnalysis;

    fn name(&self) -> &'static str {
        "flips"
    }

    fn fold(&self, ctx: &AnalysisCtx) -> FlipAnalysis {
        fold_columnar(ctx.table, ctx.s, ctx.engine_count(), ctx)
    }

    fn merge(&self, mut a: FlipAnalysis, b: FlipAnalysis) -> FlipAnalysis {
        a.merge(&b);
        a
    }

    fn finish(&self, acc: &FlipAnalysis) -> FlipAnalysis {
        acc.clone()
    }
}

/// One report's flip-state update for one 64-engine verdict-word lane.
///
/// `state` is the lane's 4-word block `[seen1, prevlab, seen2,
/// prevprev]` — engines with a previous active label, that label, the
/// label before that, and whether it exists — updated straight-line
/// with no inner word loop. A flip is `seen1 & active & (prevlab ^
/// detected)`; a hazard flip additionally requires `seen2` and
/// `prevprev == detected`. Per-engine matrix cells come from iterating
/// the set bits of the (typically sparse) `pairs`/`flipped` words.
#[inline(always)]
fn step_lane(
    a: &mut FlipAnalysis,
    type_idx: usize,
    state: &mut [u64; 4],
    aw: u64,
    d: u64,
    base: usize,
) {
    let [seen1, prevlab, seen2, prevprev] = *state;
    let pairs = seen1 & aw;
    let flipped = pairs & (prevlab ^ d);
    a.flips += u64::from(flipped.count_ones());
    a.flips_up += u64::from((flipped & d).count_ones());
    a.flips_down += u64::from((flipped & !d).count_ones());
    a.hazard_flips += u64::from((flipped & seen2 & !(prevprev ^ d)).count_ones());
    let mut bits = pairs;
    while bits != 0 {
        let e = base + bits.trailing_zeros() as usize;
        a.matrix[e][type_idx].opportunities += 1;
        bits &= bits - 1;
    }
    let mut bits = flipped;
    while bits != 0 {
        let e = base + bits.trailing_zeros() as usize;
        a.matrix[e][type_idx].flips += 1;
        bits &= bits - 1;
    }
    state[0] = seen1 | aw;
    state[1] = (prevlab & !aw) | (d & aw);
    state[2] = seen2 | pairs;
    state[3] = (prevprev & !aw) | (prevlab & aw);
}

/// Parallel, bit-sliced flip detection over the table's verdict-bitmap
/// columns.
///
/// Instead of walking every engine's label sequence separately, each
/// record keeps one 4-word state block per 64-engine lane (see
/// [`step_lane`]) and processes all 128 engines per report with two
/// straight-line block updates — no inner loop over words. All counters
/// are sums, so partitions merge exactly.
fn fold_columnar(
    table: &TrajectoryTable,
    s: &FreshDynamic,
    engine_count: usize,
    ctx: &AnalysisCtx,
) -> FlipAnalysis {
    let mut mask = [0u64; 2];
    for e in 0..engine_count.min(128) {
        mask[e / 64] |= 1 << (e % 64);
    }
    let ranges = par::partition_ranges(s.indices.len() as u64, ctx.workers);
    let parts = par::map_ranges_obs(&ranges, ctx.obs, "flips", |_, range| {
        let mut a = FlipAnalysis::empty(engine_count);
        for &rec in &s.indices[range.start as usize..range.end as usize] {
            let type_idx = table.type_idx(rec);
            debug_assert!(type_idx < 20);
            a.reports += table.report_count(rec) as u64;
            let mut lanes = [[0u64; 4]; 2];
            for row in table.rows(rec) {
                let act = table.active_words(row);
                let det = table.detected_words(row);
                step_lane(&mut a, type_idx, &mut lanes[0], act[0] & mask[0], det[0], 0);
                step_lane(
                    &mut a,
                    type_idx,
                    &mut lanes[1],
                    act[1] & mask[1],
                    det[1],
                    64,
                );
            }
        }
        a
    });
    let mut a = FlipAnalysis::empty(engine_count);
    for part in &parts {
        a.merge(part);
    }
    a
}

#[cfg(test)]
pub(crate) fn analyze_impl(
    records: &[SampleRecord],
    s: &FreshDynamic,
    engine_count: usize,
) -> FlipAnalysis {
    let mut a = FlipAnalysis {
        engine_count,
        matrix: vec![[FlipCell::default(); 20]; engine_count],
        flips: 0,
        flips_up: 0,
        flips_down: 0,
        hazard_flips: 0,
        reports: 0,
    };
    for rec in s.iter(records) {
        let type_idx = rec.meta.file_type.dense_index();
        debug_assert!(type_idx < 20);
        a.reports += rec.report_count() as u64;
        for e in 0..engine_count {
            let id = EngineId(e as u8);
            let mut prev: Option<u8> = None;
            let mut prev_prev: Option<u8> = None;
            for rep in &rec.reports {
                let Some(label) = rep.verdicts.get(id).binary_label() else {
                    continue;
                };
                if let Some(p) = prev {
                    let cell = &mut a.matrix[e][type_idx];
                    cell.opportunities += 1;
                    if p != label {
                        cell.flips += 1;
                        a.flips += 1;
                        if label == 1 {
                            a.flips_up += 1;
                        } else {
                            a.flips_down += 1;
                        }
                        // Hazard: the previous transition went the other
                        // way (pp → p → label with pp == label ≠ p).
                        if prev_prev == Some(label) {
                            a.hazard_flips += 1;
                        }
                    }
                }
                prev_prev = prev;
                prev = Some(label);
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshdyn;
    use vt_model::time::{Date, Duration, Timestamp};
    use vt_model::{
        GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict, VerdictVec,
    };

    /// Engine 0 follows `labels`; engine 1 alternates to keep the sample
    /// dynamic regardless of engine 0's pattern.
    fn record(i: u64, ft: FileType, labels: &[char]) -> SampleRecord {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = window + Duration::days(5);
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: ft,
            origin: first,
            first_submission: first,
            truth: GroundTruth::Benign,
        };
        let reports = labels
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                let mut verdicts = VerdictVec::new(4);
                verdicts.set(
                    EngineId(0),
                    match c {
                        'M' => Verdict::Malicious,
                        'B' => Verdict::Benign,
                        _ => Verdict::Undetected,
                    },
                );
                verdicts.set(
                    EngineId(1),
                    if k % 2 == 0 {
                        Verdict::Malicious
                    } else {
                        Verdict::Benign
                    },
                );
                ScanReport {
                    sample: meta.hash,
                    file_type: FileType::Pdf,
                    analysis_date: first + Duration::days(k as i64),
                    last_submission_date: first,
                    times_submitted: 1,
                    kind: ReportKind::Upload,
                    verdicts,
                }
            })
            .collect();
        SampleRecord::new(meta, reports)
    }

    fn run(records: Vec<SampleRecord>) -> FlipAnalysis {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        assert_eq!(s.len(), records.len(), "fixtures must land in S");
        analyze_impl(&records, &s, 4)
    }

    #[test]
    fn counts_flips_and_opportunities() {
        let a = run(vec![record(0, FileType::Win32Exe, &['B', 'M', 'M'])]);
        let cell = a.matrix[0][FileType::Win32Exe.dense_index()];
        assert_eq!(cell.opportunities, 2);
        assert_eq!(cell.flips, 1);
        assert!((a.ratio(EngineId(0), FileType::Win32Exe) - 0.5).abs() < 1e-12);
        // Engine 1 alternates M,B,M: 2 flips, 1 hazard.
        assert_eq!(a.matrix[1][FileType::Win32Exe.dense_index()].flips, 2);
        assert_eq!(a.hazard_flips, 1);
        assert_eq!(a.flips, 3);
        assert_eq!(a.flips_up, 2); // B→M (engine 0), B→M (engine 1)
        assert_eq!(a.flips_down, 1);
    }

    #[test]
    fn undetected_does_not_create_hazard() {
        // M U B M: active labels M,B,M → 2 flips, 1 hazard. But
        // M U M B: active labels M,M,B → 1 flip, 0 hazards.
        let a = run(vec![record(0, FileType::Pdf, &['M', 'U', 'M', 'B'])]);
        let cell = a.matrix[0][FileType::Pdf.dense_index()];
        assert_eq!(cell.opportunities, 2);
        assert_eq!(cell.flips, 1);
        // engine 1 pattern M,B,M,B: 3 flips 2 hazards.
        assert_eq!(a.hazard_flips, 2);
    }

    #[test]
    fn ranked_engines_descending() {
        let a = run(vec![record(0, FileType::Zip, &['M', 'M', 'M', 'M'])]);
        // Engine 1 alternates (ratio 1.0); engine 0 constant (0.0).
        let ranked = a.ranked_engines();
        assert_eq!(ranked[0].0, EngineId(1));
        assert!(ranked[0].1 > ranked[1].1);
        assert_eq!(a.engine_ratio(EngineId(0)), 0.0);
    }

    #[test]
    fn columnar_matches_serial_reference_at_every_worker_count() {
        use crate::analysis::AnalysisCtx;
        use crate::pipeline::Study;
        use crate::table::TrajectoryTable;
        use vt_sim::SimConfig;

        let study = Study::generate_with_workers(SimConfig::new(0xF11B5, 3_000), 2);
        let ws = study.sim().config().window_start();
        let table = TrajectoryTable::build(study.records(), ws);
        let s = freshdyn::build(study.records(), ws);
        let serial = analyze_impl(study.records(), &s, study.sim().fleet().engine_count());
        assert!(serial.flips > 0, "study too small to exercise flips");
        for workers in [1usize, 2, 8] {
            let ctx = AnalysisCtx::new(study.records(), &table, &s, study.sim().fleet(), ws)
                .with_workers(workers);
            let columnar = Flips.run(&ctx);
            assert_eq!(
                format!("{serial:?}"),
                format!("{columnar:?}"),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn per_type_cells_are_separate() {
        let a = run(vec![
            record(0, FileType::Zip, &['B', 'M', 'M']),
            record(1, FileType::Pdf, &['M', 'M']),
        ]);
        assert_eq!(a.matrix[0][FileType::Zip.dense_index()].flips, 1);
        assert_eq!(a.matrix[0][FileType::Pdf.dense_index()].flips, 0);
        assert_eq!(a.matrix[0][FileType::Pdf.dense_index()].opportunities, 1);
    }
}
