//! Streaming drift alerting over segment folds (§8.1, ROADMAP item 5).
//!
//! The paper's §8.1 recommends notifying users when a sample's AV-Rank
//! stabilizes or swings; this module generalizes that to *engine-level*
//! drift detection over the live ingest stream. An [`AlertEngine`]
//! rides along one slot's [`IncrementalStudy`](crate::IncrementalStudy)
//! (see [`with_alerts`](crate::IncrementalStudy::with_alerts)) and
//! observes every sealed segment as it is folded, running four
//! detectors:
//!
//! | id | detector | signal |
//! |---|---|---|
//! | 0 | `engine_burst` | one engine relabeling many samples the same day — the §7.1 "model update" signature |
//! | 1 | `rate_crossover` | two engines' cumulative detection rates swapping order |
//! | 2 | `stabilization_regression` | the segment's mean time-to-stabilize (§6, Fig. 9) regressing vs the running baseline |
//! | 3 | `sample_event` | per-sample [`SampleMonitor`] events (destabilized / swing) |
//!
//! **Determinism.** Every detector is a fold over *slot-local* state:
//! the per-segment inputs (the segment's columnar table and its
//! [`StudyPartials`] delta) and the accumulated baseline are
//! bit-identical however the serve tier is sharded, because segments
//! within a slot always fold in WAL sequence order. Ordinals within one
//! `(slot, seq, detector)` group come from deterministic orders
//! (`BTreeMap` iteration, engine-index pair order, canonical table
//! order), so the full alert stream — keyed `(seq, slot, detector,
//! ordinal)` — is bit-identical at any shard × worker count, and
//! replaying a crash-recovered WAL regenerates exactly the same alerts
//! under the same keys.

use std::collections::BTreeMap;

use vt_model::engine::MAX_ENGINES;
use vt_model::{SampleHash, Timestamp};

use crate::incremental::StudyPartials;
use crate::monitor::{MonitorCriteria, MonitorEvent, SampleMonitor};
use crate::table::TrajectoryTable;

/// Stable numeric detector ids — the `detector` component of an alert
/// key. Wire clients and sink consumers key dedup off these, so they
/// are append-only.
pub mod detector {
    /// [`AlertKind::EngineBurst`](super::AlertKind::EngineBurst).
    pub const ENGINE_BURST: u8 = 0;
    /// [`AlertKind::RateCrossover`](super::AlertKind::RateCrossover).
    pub const RATE_CROSSOVER: u8 = 1;
    /// [`AlertKind::StabilizationRegression`](super::AlertKind::StabilizationRegression).
    pub const STABILIZATION_REGRESSION: u8 = 2;
    /// [`AlertKind::SampleEvent`](super::AlertKind::SampleEvent).
    pub const SAMPLE_EVENT: u8 = 3;
}

/// One fired drift alert. The four id fields form the alert's identity;
/// [`kind`](Self::kind) carries the detector-specific payload in
/// integers only (minutes, counts, engine indexes), so a rendered alert
/// is bit-stable across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Ingest slot whose segment stream fired the alert.
    pub slot: u32,
    /// Segment sequence number within the slot, aligned with the
    /// durable WAL's segment order — crash-recovery replay regenerates
    /// the same `seq` for the same segment.
    pub seq: u64,
    /// Detector id (see [`detector`]).
    pub detector: u8,
    /// Position within the `(slot, seq, detector)` group, assigned in a
    /// deterministic order by each detector.
    pub ordinal: u32,
    /// What fired.
    pub kind: AlertKind,
}

impl Alert {
    /// The global ordering/dedup key. `seq` leads so alert streams from
    /// different slots interleave by segment progress, not by slot.
    pub fn key(&self) -> (u64, u32, u8, u32) {
        (self.seq, self.slot, self.detector, self.ordinal)
    }

    /// Wire name of the detector that fired.
    pub fn detector_name(&self) -> &'static str {
        match self.detector {
            detector::ENGINE_BURST => "engine_burst",
            detector::RATE_CROSSOVER => "rate_crossover",
            detector::STABILIZATION_REGRESSION => "stabilization_regression",
            detector::SAMPLE_EVENT => "sample_event",
            _ => "unknown",
        }
    }
}

/// Detector-specific alert payloads. Engines are dense roster indexes
/// (the serve tier renders names); all quantities are exact integers so
/// rendering never depends on float formatting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertKind {
    /// One engine flipped `flips` fresh-dynamic samples on one day —
    /// the mass same-day relabel burst a vendor model update produces
    /// (§7.1's flip-cause analysis, streamed).
    EngineBurst {
        /// Dense engine index.
        engine: u32,
        /// Day number (whole days since the window epoch) of the burst.
        day: i64,
        /// Label flips attributed to that engine on that day.
        flips: u64,
    },
    /// Two engines' cumulative detection rates crossed: `overtaking`
    /// was strictly below `overtaken` before this segment and is
    /// strictly above after it.
    RateCrossover {
        /// Engine that moved above.
        overtaking: u32,
        /// Engine that was overtaken.
        overtaken: u32,
        /// Cumulative detections of the overtaking engine (post-segment).
        overtaking_detections: u64,
        /// Cumulative scans of the overtaking engine (post-segment).
        overtaking_scans: u64,
        /// Cumulative detections of the overtaken engine (post-segment).
        overtaken_detections: u64,
        /// Cumulative scans of the overtaken engine (post-segment).
        overtaken_scans: u64,
    },
    /// The segment's mean minutes-to-stabilize at the configured Fig. 9
    /// threshold regressed past the configured factor of the running
    /// baseline's mean.
    StabilizationRegression {
        /// The Fig. 9 AV-Rank threshold the regression was measured at.
        threshold: u32,
        /// Segment mean minutes-to-stabilize (integer floor).
        segment_mean_minutes: u64,
        /// Baseline (all prior segments) mean minutes-to-stabilize.
        baseline_mean_minutes: u64,
        /// Stabilized samples in the segment at this threshold.
        segment_stabilized: u64,
    },
    /// A per-sample [`SampleMonitor`] event — the §8.1 notification
    /// feature, streamed over the whole ingest.
    SampleEvent {
        /// The sample whose trajectory fired.
        hash: SampleHash,
        /// The monitor event (destabilized or swing; plain
        /// stabilizations are counted in totals but not alerted).
        event: MonitorEvent,
    },
}

/// Detector tuning. Every threshold is an exact integer (permille
/// ratios, not floats) so firing decisions are bit-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertConfig {
    /// Slot id stamped on every alert this engine emits.
    pub slot: u32,
    /// Minimum same-day flips by one engine to fire an `engine_burst`.
    pub burst_min: u64,
    /// Cap on `engine_burst` alerts per segment (largest bursts beyond
    /// the cap are dropped in deterministic `(engine, day)` order).
    pub max_burst_alerts: usize,
    /// Minimum cumulative scans *before* the segment for an engine to
    /// participate in crossover comparisons.
    pub crossover_min_scans: u64,
    /// Minimum post-crossover rate gap, in permille of detection rate.
    pub crossover_min_gap_permille: u64,
    /// Cap on `rate_crossover` alerts per segment.
    pub max_crossover_alerts: usize,
    /// Fig. 9 threshold the regression detector watches (must be one of
    /// [`FIG9_THRESHOLDS`](crate::stabilization::FIG9_THRESHOLDS)).
    pub regression_threshold: u32,
    /// Fire when `segment_mean ≥ factor/1000 × baseline_mean`.
    pub regression_factor_permille: u64,
    /// Minimum stabilized samples (segment and baseline both) before
    /// the regression comparison is meaningful.
    pub regression_min_stabilized: u64,
    /// Per-sample monitor criteria (§8.1 "user-customizable").
    pub criteria: MonitorCriteria,
    /// Cap on `sample_event` alerts per segment (events beyond the cap
    /// still count in [`AlertTotals`]).
    pub max_sample_alerts: usize,
}

impl Default for AlertConfig {
    fn default() -> Self {
        Self {
            slot: 0,
            burst_min: 8,
            max_burst_alerts: 16,
            crossover_min_scans: 500,
            crossover_min_gap_permille: 2,
            max_crossover_alerts: 16,
            regression_threshold: 10,
            regression_factor_permille: 1_250,
            regression_min_stabilized: 20,
            criteria: MonitorCriteria::default(),
            max_sample_alerts: 16,
        }
    }
}

/// Cumulative event totals, including monitor events that the
/// per-segment alert cap suppressed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlertTotals {
    /// Alerts emitted (all detectors).
    pub fired: u64,
    /// [`MonitorEvent::Stabilized`] events observed.
    pub stabilized: u64,
    /// [`MonitorEvent::Destabilized`] events observed.
    pub destabilized: u64,
    /// [`MonitorEvent::Swing`] events observed.
    pub swings: u64,
}

/// Slot-local streaming drift detector state: a fold over the slot's
/// segment sequence. Feeding the same segments in the same order always
/// yields the same alerts — the serve tier relies on this to replay a
/// crash-recovered WAL without inventing or losing alerts.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    config: AlertConfig,
    /// Next segment sequence number (aligned with the WAL).
    seq: u64,
    /// Cumulative per-engine scan counts across folded segments.
    scans: Vec<u64>,
    /// Cumulative per-engine detection counts across folded segments.
    detections: Vec<u64>,
    /// Alerts fired but not yet drained by the caller.
    pending: Vec<Alert>,
    totals: AlertTotals,
}

impl AlertEngine {
    /// A fresh detector bank at segment sequence 0.
    pub fn new(config: AlertConfig) -> Self {
        Self {
            config,
            seq: 0,
            scans: vec![0; MAX_ENGINES],
            detections: vec![0; MAX_ENGINES],
            pending: Vec::new(),
            totals: AlertTotals::default(),
        }
    }

    /// The tuning this bank runs with.
    pub fn config(&self) -> &AlertConfig {
        &self.config
    }

    /// Segments observed so far (the next alert's `seq`).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Cumulative event totals.
    pub fn totals(&self) -> AlertTotals {
        self.totals
    }

    /// Drains alerts fired since the last drain, in key order.
    pub fn take_pending(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.pending)
    }

    /// Runs every detector over one sealed segment: `seg` is the
    /// segment's own partial delta, `baseline` the accumulation of all
    /// *prior* segments (`None` for the first), `table` the segment's
    /// columnar trajectories. Called by
    /// [`IncrementalStudy`](crate::IncrementalStudy) before the delta
    /// is merged into its accumulator.
    pub fn observe_segment(
        &mut self,
        baseline: Option<&StudyPartials>,
        seg: &StudyPartials,
        table: &TrajectoryTable,
    ) {
        let seq = self.seq;
        self.seq += 1;
        let mut out = Vec::new();
        self.detect_bursts(seq, table, &mut out);
        self.detect_crossovers(seq, table, &mut out);
        self.detect_regression(seq, baseline, seg, &mut out);
        self.detect_sample_events(seq, table, &mut out);
        self.totals.fired += out.len() as u64;
        self.pending.extend(out);
    }

    fn alert(&self, seq: u64, detector: u8, ordinal: u32, kind: AlertKind) -> Alert {
        Alert {
            slot: self.config.slot,
            seq,
            detector,
            ordinal,
            kind,
        }
    }

    /// Detector 0: per-(engine, day) flip counts over the segment's
    /// fresh-dynamic samples, walked with the same bit-sliced lane
    /// state as the §7.1 fold so the counts match the flip analysis.
    fn detect_bursts(&mut self, seq: u64, table: &TrajectoryTable, out: &mut Vec<Alert>) {
        let mut per_day: BTreeMap<(u32, i64), u64> = BTreeMap::new();
        let active = table.active_rows();
        let detected = table.detected_rows();
        for i in 0..table.len() {
            if !table.in_s(i) {
                continue;
            }
            let range = table.rows(i);
            // [seen lo, seen hi, prev lo, prev hi], as in the index walk.
            let mut state = [0u64; 4];
            for ((row, a), d) in range
                .clone()
                .zip(&active[range.clone()])
                .zip(&detected[range])
            {
                let flipped = [
                    (state[2] ^ d[0]) & a[0] & state[0],
                    (state[3] ^ d[1]) & a[1] & state[1],
                ];
                if flipped[0] | flipped[1] != 0 {
                    let day = table.date(row).day_number();
                    for (w, mut bits) in flipped.into_iter().enumerate() {
                        while bits != 0 {
                            let engine = bits.trailing_zeros() + 64 * w as u32;
                            *per_day.entry((engine, day)).or_insert(0) += 1;
                            bits &= bits - 1;
                        }
                    }
                }
                state[2] = (state[2] & !a[0]) | (d[0] & a[0]);
                state[3] = (state[3] & !a[1]) | (d[1] & a[1]);
                state[0] |= a[0];
                state[1] |= a[1];
            }
        }
        let mut ordinal = 0u32;
        for (&(engine, day), &flips) in &per_day {
            if flips < self.config.burst_min {
                continue;
            }
            if ordinal as usize >= self.config.max_burst_alerts {
                break;
            }
            out.push(self.alert(
                seq,
                detector::ENGINE_BURST,
                ordinal,
                AlertKind::EngineBurst { engine, day, flips },
            ));
            ordinal += 1;
        }
    }

    /// Detector 1: cumulative detection-rate order reversals, compared
    /// by exact cross-multiplication — no float rates anywhere near a
    /// firing decision. Per-segment scan/detection counts come from the
    /// bit-sliced vertical counter ([`engine_report_counts`]), and the
    /// O(engines²) pair scan is prefiltered by exact rate ranks
    /// ([`rate_ranks`]): only pairs whose rank order actually inverted
    /// pay the cross-multiplied confirmation, which keeps this detector
    /// off the segment-fold critical path's budget.
    fn detect_crossovers(&mut self, seq: u64, table: &TrajectoryTable, out: &mut Vec<Alert>) {
        let (seg_scans, seg_dets) = engine_report_counts(table);
        // Engines past the scan floor, ascending id — the only possible
        // crossover parties. Pair order over this list is identical to
        // the naive `i < j` scan with ineligible engines skipped.
        let eligible: Vec<usize> = (0..MAX_ENGINES)
            .filter(|&e| self.scans[e] >= self.config.crossover_min_scans)
            .collect();
        // Rank the eligible engines by exact rate order before and after
        // this segment. Ranks are order-isomorphic to the cross-
        // multiplied comparison (exact ties share a rank), so a pair's
        // rate order inverted iff its rank order inverted — two integer
        // compares per pair instead of four u128 multiplications.
        let before_rank = rate_ranks(&eligible, |e| (self.detections[e], self.scans[e]));
        let after_rank = rate_ranks(&eligible, |e| {
            (
                self.detections[e] + seg_dets[e],
                self.scans[e] + seg_scans[e],
            )
        });
        let mut ordinal = 0u32;
        'pairs: for (xi, &i) in eligible.iter().enumerate() {
            for (off, &j) in eligible[xi + 1..].iter().enumerate() {
                let xj = xi + 1 + off;
                if seg_scans[i] == 0 && seg_scans[j] == 0 {
                    continue;
                }
                let inverted = (before_rank[xi] < before_rank[xj]
                    && after_rank[xi] > after_rank[xj])
                    || (before_rank[xi] > before_rank[xj] && after_rank[xi] < after_rank[xj]);
                if !inverted {
                    continue;
                }
                let before = rate_cmp(
                    self.detections[i],
                    self.scans[i],
                    self.detections[j],
                    self.scans[j],
                );
                let (di, si) = (
                    self.detections[i] + seg_dets[i],
                    self.scans[i] + seg_scans[i],
                );
                let (dj, sj) = (
                    self.detections[j] + seg_dets[j],
                    self.scans[j] + seg_scans[j],
                );
                let after = rate_cmp(di, si, dj, sj);
                use std::cmp::Ordering::{Greater, Less};
                let (up, down) = match (before, after) {
                    (Less, Greater) => ((di, si), (dj, sj)),
                    (Greater, Less) => ((dj, sj), (di, si)),
                    _ => continue,
                };
                // Post-crossover gap ≥ min_gap_permille, exactly:
                // (d_up/s_up − d_dn/s_dn) × 1000 ≥ gap.
                let gap_lhs = (up.0 as u128 * down.1 as u128 - down.0 as u128 * up.1 as u128)
                    .saturating_mul(1000);
                let gap_rhs =
                    self.config.crossover_min_gap_permille as u128 * up.1 as u128 * down.1 as u128;
                if gap_lhs < gap_rhs {
                    continue;
                }
                if ordinal as usize >= self.config.max_crossover_alerts {
                    break 'pairs;
                }
                let (overtaking, overtaken) = if up == (di, si) {
                    (i as u32, j as u32)
                } else {
                    (j as u32, i as u32)
                };
                out.push(self.alert(
                    seq,
                    detector::RATE_CROSSOVER,
                    ordinal,
                    AlertKind::RateCrossover {
                        overtaking,
                        overtaken,
                        overtaking_detections: up.0,
                        overtaking_scans: up.1,
                        overtaken_detections: down.0,
                        overtaken_scans: down.1,
                    },
                ));
                ordinal += 1;
            }
        }
        for e in 0..MAX_ENGINES {
            self.scans[e] += seg_scans[e];
            self.detections[e] += seg_dets[e];
        }
    }

    /// Detector 2: the segment's mean minutes-to-stabilize (§6 label
    /// variant over all samples) vs the running baseline's, compared by
    /// exact cross-multiplication against the configured factor.
    fn detect_regression(
        &mut self,
        seq: u64,
        baseline: Option<&StudyPartials>,
        seg: &StudyPartials,
        out: &mut Vec<Alert>,
    ) {
        let Some(base) = baseline else { return };
        let t = self.config.regression_threshold;
        let row = |p: &StudyPartials| {
            p.stabilization_partial()
                .label_all_totals()
                .find(|&(tt, _, _)| tt == t)
        };
        let (Some((_, s_st, s_min)), Some((_, b_st, b_min))) = (row(seg), row(base)) else {
            return;
        };
        let floor = self.config.regression_min_stabilized;
        if s_st < floor.max(1) || b_st < floor.max(1) {
            return;
        }
        if s_min == 0 && b_min == 0 {
            // Everything stabilized instantly on both sides — a zero
            // mean cannot regress from a zero baseline.
            return;
        }
        // s_min/s_st ≥ factor/1000 × b_min/b_st.
        let lhs = s_min as u128 * b_st as u128 * 1000;
        let rhs = self.config.regression_factor_permille as u128 * b_min as u128 * s_st as u128;
        if lhs < rhs {
            return;
        }
        out.push(self.alert(
            seq,
            detector::STABILIZATION_REGRESSION,
            0,
            AlertKind::StabilizationRegression {
                threshold: t,
                segment_mean_minutes: s_min / s_st,
                baseline_mean_minutes: b_min / b_st,
                segment_stabilized: s_st,
            },
        ));
    }

    /// Detector 3: the §8.1 per-sample monitor over every trajectory in
    /// the segment (segments always hold whole samples, so one pass per
    /// segment sees each sample's full report stream).
    fn detect_sample_events(&mut self, seq: u64, table: &TrajectoryTable, out: &mut Vec<Alert>) {
        let mut ordinal = 0u32;
        // One monitor reused across every sample: `reset` keeps the
        // window buffer's capacity, so steady state runs allocation-free.
        let mut monitor = SampleMonitor::new(self.config.criteria);
        for i in 0..table.len() {
            if table.report_count(i) < 2 {
                continue;
            }
            monitor.reset();
            let hash = table.hash(i);
            for (&at, &rank) in table.dates_of(i).iter().zip(table.positives_of(i)) {
                for event in monitor.observe(Timestamp(at), rank) {
                    let emit = match event {
                        MonitorEvent::Stabilized { .. } => {
                            self.totals.stabilized += 1;
                            false
                        }
                        MonitorEvent::Destabilized { .. } => {
                            self.totals.destabilized += 1;
                            true
                        }
                        MonitorEvent::Swing { .. } => {
                            self.totals.swings += 1;
                            true
                        }
                    };
                    if emit && (ordinal as usize) < self.config.max_sample_alerts {
                        out.push(self.alert(
                            seq,
                            detector::SAMPLE_EVENT,
                            ordinal,
                            AlertKind::SampleEvent { hash, event },
                        ));
                        ordinal += 1;
                    }
                }
            }
        }
    }
}

/// Exact rate order of `di/si` vs `dj/sj` by u128 cross-multiplication.
#[inline]
fn rate_cmp(di: u64, si: u64, dj: u64, sj: u64) -> std::cmp::Ordering {
    (di as u128 * sj as u128).cmp(&(dj as u128 * si as u128))
}

/// Dense rate ranks over `eligible` (indexed by list position): engines
/// sorted by the exact cross-multiplied rate order, exact ties sharing
/// a rank — so `rank[x] < rank[y]` iff x's rate is strictly below y's.
fn rate_ranks(eligible: &[usize], rate: impl Fn(usize) -> (u64, u64)) -> Vec<u32> {
    let mut order: Vec<u32> = (0..eligible.len() as u32).collect();
    order.sort_unstable_by(|&x, &y| {
        let (dx, sx) = rate(eligible[x as usize]);
        let (dy, sy) = rate(eligible[y as usize]);
        rate_cmp(dx, sx, dy, sy).then(x.cmp(&y))
    });
    let mut ranks = vec![0u32; eligible.len()];
    let mut r = 0u32;
    for k in 1..order.len() {
        let (dp, sp) = rate(eligible[order[k - 1] as usize]);
        let (dc, sc) = rate(eligible[order[k] as usize]);
        if rate_cmp(dp, sp, dc, sc) != std::cmp::Ordering::Equal {
            r += 1;
        }
        ranks[order[k] as usize] = r;
    }
    ranks
}

/// Per-engine (active, detected) report counts over every row of one
/// segment's table, accumulated with bit-sliced carry-save counters:
/// each engine's count grows vertically across [`PLANES`] bit planes
/// (bit `e` of plane `p` is bit `p` of engine `e`'s count), flushed
/// into the 64-bit totals at most once per 2^PLANES - 1 rows — once
/// per segment in practice. A row costs a handful of word ops for
/// all 128 engines instead of one loop iteration per set bit — the
/// totals are bit-exactly those of the per-bit walk.
fn engine_report_counts(table: &TrajectoryTable) -> (Vec<u64>, Vec<u64>) {
    let mut scans = vec![0u64; MAX_ENGINES];
    let mut dets = vec![0u64; MAX_ENGINES];
    let mut scan_planes = [[0u64; PLANES]; 2];
    let mut det_planes = [[0u64; PLANES]; 2];
    let mut pending = 0u32;
    for (a, d) in table.active_rows().iter().zip(table.detected_rows()) {
        for w in 0..2 {
            vertical_add(&mut scan_planes[w], a[w]);
            vertical_add(&mut det_planes[w], d[w] & a[w]);
        }
        pending += 1;
        if pending == (1 << PLANES) - 1 {
            flush_planes(&mut scan_planes, &mut scans);
            flush_planes(&mut det_planes, &mut dets);
            pending = 0;
        }
    }
    if pending > 0 {
        flush_planes(&mut scan_planes, &mut scans);
        flush_planes(&mut det_planes, &mut dets);
    }
    (scans, dets)
}

/// Bit planes per vertical counter: counts up to 2^16 - 1 rows between
/// flushes, so a typical segment flushes exactly once.
const PLANES: usize = 16;

/// Adds one 64-lane bit vector into a vertical counter by ripple-carry
/// across planes. Callers flush before 2^PLANES - 1 adds, so the carry
/// cannot run off the top plane.
#[inline]
fn vertical_add(planes: &mut [u64; PLANES], mut carry: u64) {
    // The low planes run branch-free: a carry survives past plane 4 for
    // only ~1/16 of adds, so one well-predicted branch replaces four
    // unpredictable early exits on the hot path.
    for p in &mut planes[..4] {
        let t = *p & carry;
        *p ^= carry;
        carry = t;
    }
    if carry == 0 {
        return;
    }
    for p in &mut planes[4..] {
        if carry == 0 {
            return;
        }
        let t = *p & carry;
        *p ^= carry;
        carry = t;
    }
    debug_assert_eq!(carry, 0, "vertical counter overflow: flush cadence broken");
}

/// Drains a two-bank 8-plane vertical counter into per-engine totals
/// and zeroes the planes.
fn flush_planes(planes: &mut [[u64; PLANES]; 2], totals: &mut [u64]) {
    for (w, bank) in planes.iter_mut().enumerate() {
        for (p, plane) in bank.iter_mut().enumerate() {
            let mut bits = *plane;
            while bits != 0 {
                let e = bits.trailing_zeros() as usize + 64 * w;
                totals[e] += 1 << p;
                bits &= bits - 1;
            }
            *plane = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::SampleRecord;
    use vt_engines::EngineFleet;
    use vt_model::time::{Date, Duration};
    use vt_model::{
        EngineId, FileType, GroundTruth, ReportKind, SampleMeta, ScanReport, Verdict, VerdictVec,
    };
    use vt_obs::Obs;

    fn window() -> Timestamp {
        Timestamp::from_date(Date::new(2021, 5, 1))
    }

    fn meta(i: u64) -> SampleMeta {
        let first = window() + Duration::days(1);
        SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: FileType::Win32Exe,
            origin: first - Duration::days(2),
            first_submission: first,
            truth: GroundTruth::Benign,
        }
    }

    /// A fresh Win32 sample (→ in *S* whenever its AV-Rank moves) whose
    /// k-th report has `active` engines labeling and `detections[k]`
    /// detecting, reports `minutes_apart` apart.
    fn record_with(
        i: u64,
        active: &[usize],
        detections: &[&[usize]],
        minutes_apart: i64,
    ) -> SampleRecord {
        let m = meta(i);
        let reports = detections
            .iter()
            .enumerate()
            .map(|(k, det)| {
                let mut v = VerdictVec::new(70);
                for &e in active {
                    v.set(EngineId::new(e), Verdict::Benign);
                }
                for &e in *det {
                    v.set(EngineId::new(e), Verdict::Malicious);
                }
                ScanReport {
                    sample: m.hash,
                    file_type: m.file_type,
                    analysis_date: m.first_submission + Duration::minutes(k as i64 * minutes_apart),
                    last_submission_date: m.first_submission,
                    times_submitted: 1,
                    kind: ReportKind::Upload,
                    verdicts: v,
                }
            })
            .collect();
        SampleRecord::new(m, reports)
    }

    fn table_of(records: &[SampleRecord]) -> TrajectoryTable {
        TrajectoryTable::build(records, window())
    }

    /// `reports` labels by engine 0 alternating detect / clear — one
    /// flip per report after the first, all on the same day.
    fn flippy_sample(i: u64, reports: usize) -> SampleRecord {
        let detections: Vec<&[usize]> = (0..reports)
            .map(|k| if k % 2 == 0 { &[0usize][..] } else { &[][..] })
            .collect();
        record_with(i, &[0, 1, 2], &detections, 10)
    }

    fn engine_of(config: AlertConfig) -> AlertEngine {
        AlertEngine::new(config)
    }

    /// Folds a real partial for the table so the regression detector
    /// has genuine §6 accumulators to read.
    fn partials_of(table: &TrajectoryTable) -> StudyPartials {
        let fleet = EngineFleet::with_seed(1);
        let mut study = crate::IncrementalStudy::new(&fleet, window()).with_workers(1);
        study.fold_table(table, Obs::noop());
        study.partials().unwrap().clone()
    }

    #[test]
    fn burst_detector_counts_same_day_flips() {
        // 3 samples × 4 reports = 3 engine-0 flips each, same day.
        let records: Vec<SampleRecord> = (0..3).map(|i| flippy_sample(i, 4)).collect();
        let table = table_of(&records);
        assert!((0..table.len()).all(|i| table.in_s(i)));
        let mut out = Vec::new();
        engine_of(AlertConfig {
            burst_min: 9,
            ..AlertConfig::default()
        })
        .detect_bursts(0, &table, &mut out);
        assert_eq!(out.len(), 1);
        match out[0].kind {
            AlertKind::EngineBurst { engine, day, flips } => {
                assert_eq!(engine, 0);
                assert_eq!(day, (window() + Duration::days(1)).day_number());
                assert_eq!(flips, 9);
            }
            ref other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(out[0].detector, detector::ENGINE_BURST);
        assert_eq!(out[0].ordinal, 0);
    }

    #[test]
    fn burst_detector_respects_threshold_and_cap() {
        let records: Vec<SampleRecord> = (0..3).map(|i| flippy_sample(i, 4)).collect();
        let table = table_of(&records);
        let mut out = Vec::new();
        engine_of(AlertConfig {
            burst_min: 10,
            ..AlertConfig::default()
        })
        .detect_bursts(0, &table, &mut out);
        assert!(out.is_empty(), "below burst_min must not fire");
        let mut capped = Vec::new();
        engine_of(AlertConfig {
            burst_min: 1,
            max_burst_alerts: 1,
            ..AlertConfig::default()
        })
        .detect_bursts(0, &table, &mut capped);
        assert_eq!(capped.len(), 1, "cap must truncate deterministically");
    }

    #[test]
    fn crossover_fires_on_exact_rate_reversal() {
        let mut eng = engine_of(AlertConfig {
            crossover_min_scans: 10,
            crossover_min_gap_permille: 0,
            ..AlertConfig::default()
        });
        // Cumulative state: engine 0 at 2/10, engine 1 at 5/10.
        eng.scans[0] = 10;
        eng.detections[0] = 2;
        eng.scans[1] = 10;
        eng.detections[1] = 5;
        // Segment: engine 0 detects in all 10 scans, engine 1 in none →
        // after: 12/20 vs 5/20, a strict reversal.
        let records: Vec<SampleRecord> = (0..5)
            .map(|i| record_with(100 + i, &[0, 1], &[&[0], &[0]], 10))
            .collect();
        let table = table_of(&records);
        let mut out = Vec::new();
        eng.detect_crossovers(0, &table, &mut out);
        assert_eq!(out.len(), 1);
        match out[0].kind {
            AlertKind::RateCrossover {
                overtaking,
                overtaken,
                overtaking_detections,
                overtaking_scans,
                overtaken_detections,
                overtaken_scans,
            } => {
                assert_eq!((overtaking, overtaken), (0, 1));
                assert_eq!((overtaking_detections, overtaking_scans), (12, 20));
                assert_eq!((overtaken_detections, overtaken_scans), (5, 20));
            }
            ref other => panic!("unexpected kind {other:?}"),
        }
        // Cumulative state committed...
        assert_eq!((eng.scans[0], eng.detections[0]), (20, 12));
        // ...so an identical fold no longer reverses the order.
        let mut again = Vec::new();
        eng.detect_crossovers(1, &table, &mut again);
        assert!(again.is_empty());
    }

    #[test]
    fn crossover_gap_guard_suppresses_noise() {
        let mut eng = engine_of(AlertConfig {
            crossover_min_scans: 10,
            crossover_min_gap_permille: 500,
            ..AlertConfig::default()
        });
        eng.scans[0] = 1000;
        eng.detections[0] = 499;
        eng.scans[1] = 1000;
        eng.detections[1] = 500;
        // Two detections flip the order by a hair — far under a
        // 500-permille gap.
        let records = [record_with(7, &[0], &[&[0], &[0]], 10)];
        let table = table_of(&records);
        let mut out = Vec::new();
        eng.detect_crossovers(0, &table, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn sample_events_count_and_cap() {
        // AV-Rank 5 → 40 within an hour: a swing under the default
        // criteria (threshold 10, interval 3 days).
        let low: Vec<usize> = (0..5).collect();
        let high: Vec<usize> = (0..40).collect();
        let active: Vec<usize> = (0..45).collect();
        let records = [record_with(1, &active, &[&low, &high], 60)];
        let table = table_of(&records);
        let mut eng = engine_of(AlertConfig::default());
        let mut out = Vec::new();
        eng.detect_sample_events(0, &table, &mut out);
        assert_eq!(eng.totals().swings, 1);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].kind,
            AlertKind::SampleEvent {
                event: MonitorEvent::Swing { delta: 35, .. },
                ..
            }
        ));
        // Capped at zero: totals still count, nothing emitted.
        let mut eng2 = engine_of(AlertConfig {
            max_sample_alerts: 0,
            ..AlertConfig::default()
        });
        let mut none = Vec::new();
        eng2.detect_sample_events(0, &table, &mut none);
        assert_eq!(eng2.totals().swings, 1);
        assert!(none.is_empty());
    }

    #[test]
    fn regression_detector_compares_means_exactly() {
        // AV-Rank 3,3,0,0 at threshold 2: labels 1,1,0,0 → stabilizes
        // at the third report, 20 minutes after the first.
        let records: Vec<SampleRecord> = (0..4)
            .map(|i| record_with(i, &[0, 1, 2, 3], &[&[0, 1, 2], &[0, 1, 2], &[], &[]], 10))
            .collect();
        let table = table_of(&records);
        let partial = partials_of(&table);
        let (_, stabilized, minutes) = partial
            .stabilization_partial()
            .label_all_totals()
            .find(|&(t, _, _)| t == 2)
            .unwrap();
        assert_eq!((stabilized, minutes), (4, 80));
        let mut eng = engine_of(AlertConfig {
            regression_threshold: 2,
            regression_min_stabilized: 1,
            ..AlertConfig::default()
        });
        let mut out = Vec::new();
        eng.detect_regression(0, Some(&partial), &partial, &mut out);
        assert!(out.is_empty(), "equal means are not a 1.25× regression");
        // At factor 1000 permille (1.0×) equal nonzero means do fire.
        let mut eq_eng = engine_of(AlertConfig {
            regression_threshold: 2,
            regression_min_stabilized: 1,
            regression_factor_permille: 1000,
            ..AlertConfig::default()
        });
        let mut eq_out = Vec::new();
        eq_eng.detect_regression(0, Some(&partial), &partial, &mut eq_out);
        assert_eq!(eq_out.len(), 1);
        match eq_out[0].kind {
            AlertKind::StabilizationRegression {
                threshold,
                segment_mean_minutes,
                baseline_mean_minutes,
                segment_stabilized,
            } => {
                assert_eq!(threshold, 2);
                assert_eq!((segment_mean_minutes, baseline_mean_minutes), (20, 20));
                assert_eq!(segment_stabilized, 4);
            }
            ref other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn observe_segment_is_deterministic_and_keyed() {
        let records: Vec<SampleRecord> = (0..4).map(|i| flippy_sample(i, 4)).collect();
        let table = table_of(&records);
        let partial = partials_of(&table);
        let config = AlertConfig {
            slot: 3,
            burst_min: 2,
            ..AlertConfig::default()
        };
        let run = || {
            let mut eng = AlertEngine::new(config);
            eng.observe_segment(None, &partial, &table);
            eng.observe_segment(Some(&partial), &partial, &table);
            (eng.take_pending(), eng.totals())
        };
        let (a, ta) = run();
        let (b, tb) = run();
        assert_eq!(a, b, "identical folds must fire identical alerts");
        assert_eq!(ta, tb);
        assert!(!a.is_empty());
        // Keys strictly increase in drain order and carry the slot.
        for pair in a.windows(2) {
            assert!(pair[0].key() < pair[1].key());
        }
        assert!(a.iter().all(|al| al.slot == 3));
        assert!(
            a.iter().any(|al| al.seq == 1),
            "second segment alerts at seq 1"
        );
        assert_eq!(ta.fired, a.len() as u64);
        // Drain is destructive; seq keeps advancing.
        let mut eng = AlertEngine::new(config);
        eng.observe_segment(None, &partial, &table);
        let first = eng.take_pending();
        assert!(eng.take_pending().is_empty());
        assert!(!first.is_empty());
        assert_eq!(eng.seq(), 1);
    }

    #[test]
    fn detector_names_are_stable() {
        let names: Vec<&str> = [
            detector::ENGINE_BURST,
            detector::RATE_CROSSOVER,
            detector::STABILIZATION_REGRESSION,
            detector::SAMPLE_EVENT,
        ]
        .iter()
        .map(|&d| {
            Alert {
                slot: 0,
                seq: 0,
                detector: d,
                ordinal: 0,
                kind: AlertKind::EngineBurst {
                    engine: 0,
                    day: 0,
                    flips: 0,
                },
            }
            .detector_name()
        })
        .collect();
        assert_eq!(
            names,
            [
                "engine_burst",
                "rate_crossover",
                "stabilization_regression",
                "sample_event"
            ]
        );
    }
}
