//! End-to-end study orchestration: simulate → ingest → store → analyze.
//!
//! [`Study::generate`] produces the dataset (in parallel over sample
//! ordinals — generation is the expensive pass), routes every report
//! through the compressed [`vt_store::ReportStore`] (producing the
//! Table 2 accounting and exercising the storage substrate end to end),
//! and [`Study::run`] executes every analysis of the paper, returning a
//! [`StudyResults`] with one field per table/figure.
//!
//! ## The stage registry
//!
//! Every analysis runs as an [`Analysis`] stage against one shared
//! [`AnalysisCtx`]. `registry` is the single ordered list of stages;
//! [`analyze_records_obs`] iterates it, running each stage under its
//! `pipeline/<name>` span, so adding an analysis means adding one
//! registry line — the timing, naming and result plumbing come free.
//! [`stage_names`] exposes the roster for tests and tooling.
//!
//! Instrumentation is strictly write-only: no stage reads the `Obs`
//! handle, so a [`StudyResults`] is bit-identical whether observability
//! is enabled, disabled, or [`Obs::noop`] — only
//! [`StudyResults::stage_timings`] (empty when disabled) differs.

use crate::analysis::{Analysis, AnalysisCtx};
use crate::categorize::{Categorize, CategorySweep};
use crate::causes::{CauseAnalysis, Causes};
use crate::collector::Collector;
use crate::correlation::{self, Correlation, CorrelationAnalysis};
use crate::flips::{FlipAnalysis, Flips};
use crate::freshdyn;
use crate::intervals::{IntervalAnalysis, Intervals};
use crate::landscape::{Fig1Points, Landscape};
use crate::metrics::{Metrics, MetricsAnalysis, WindowGrowth};
use crate::par;
use crate::records::SampleRecord;
use crate::stability::{Stability, StabilityAnalysis};
use crate::stabilization::{LabelStabilization, RankStabilization, Stabilization};
use crate::table::TrajectoryTable;
use vt_engines::EngineFleet;
use vt_model::time::Timestamp;
use vt_model::{FileType, ScanReport};
use vt_obs::Obs;
use vt_sim::fault::{FaultPlan, FaultyFeed};
use vt_sim::{SimConfig, VirusTotalSim};
use vt_store::{DatasetStats, PartitionStats, ReportStore};

/// A generated dataset plus the machinery to analyze it.
#[derive(Debug)]
pub struct Study {
    sim: VirusTotalSim,
    records: Vec<SampleRecord>,
}

/// Wall-clock accounting for one pipeline stage, extracted from the
/// run's `pipeline/<name>` spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (as in [`stage_names`], plus `table` for the columnar
    /// [`TrajectoryTable`] build and `freshdyn` for the *S*
    /// construction, both of which precede the stages).
    pub name: String,
    /// Times the stage ran during this `Obs`'s lifetime.
    pub count: u64,
    /// Total nanoseconds across those runs.
    pub total_ns: u64,
    /// Slowest single run in nanoseconds.
    pub max_ns: u64,
}

/// Every table and figure of the paper, as typed results.
#[derive(Debug)]
pub struct StudyResults {
    /// §4.2 dataset overview (Tables 2–3, Fig. 1 inputs).
    pub dataset: DatasetStats,
    /// Fig. 1 reference points.
    pub fig1: Fig1Points,
    /// Table 2: per-month store accounting.
    pub partitions: Vec<PartitionStats>,
    /// §5.1–5.2 (Obs. 1–2, Figs. 2–4).
    pub stability: StabilityAnalysis,
    /// |S| (paper: 32,051,433).
    pub s_samples: u64,
    /// Reports in S (paper: 109,142,027).
    pub s_reports: u64,
    /// §5.3.2–5.3.4 (Obs. 3–4, Figs. 5–6).
    pub metrics: MetricsAnalysis,
    /// §8.1: fraction of S whose Δ grows from a 1-month to a 3-month
    /// observation window (paper: 8.6%).
    pub window_growth: f64,
    /// §5.3.5 (Obs. 5, Fig. 7).
    pub intervals: IntervalAnalysis,
    /// §5.4 overall sweep (Fig. 8a).
    pub categories_all: CategorySweep,
    /// §5.4 PE sweep (Fig. 8b).
    pub categories_pe: CategorySweep,
    /// §5.5 (Obs. 7).
    pub causes: CauseAnalysis,
    /// §6.1 sweep over r = 0..=5 (Obs. 8).
    pub rank_stabilization: Vec<RankStabilization>,
    /// §6.2 over all of S (Fig. 9a).
    pub label_stabilization_all: Vec<LabelStabilization>,
    /// §6.2 excluding 2-scan samples (Fig. 9b).
    pub label_stabilization_multi: Vec<LabelStabilization>,
    /// §7.1 (Obs. 10, Fig. 10).
    pub flips: FlipAnalysis,
    /// §7.2 global (Fig. 11).
    pub correlation_global: CorrelationAnalysis,
    /// §7.2 per type (Fig. 12, Tables 4–8 + the DEX/GZIP quirks).
    pub correlation_per_type: Vec<CorrelationAnalysis>,
    /// Per-stage wall clock, in `Obs` snapshot order. Empty when the
    /// run's `Obs` was disabled (the default paths). Counts accumulate
    /// over the `Obs`'s lifetime, so a reused handle reports totals
    /// across runs.
    pub stage_timings: Vec<StageTiming>,
}

/// File types given a dedicated correlation analysis (the paper's top-5
/// tables plus the DEX and GZIP quirk scopes).
pub const CORRELATION_SCOPES: [FileType; 7] = [
    FileType::Win32Exe,
    FileType::Txt,
    FileType::Html,
    FileType::Zip,
    FileType::Pdf,
    FileType::Dex,
    FileType::Gzip,
];

/// Row cap for correlation matrices (keeps the O(pairs × rows) pass
/// bounded at large scales). When a scope exceeds the cap the rows are
/// strided evenly across it (see [`correlation::row_selected`]) and the
/// analysis is flagged `truncated` — never a silent prefix.
pub const CORRELATION_MAX_ROWS: usize = 400_000;

/// Runs the §7.2 correlation analysis for the global scope and every
/// [`CORRELATION_SCOPES`] file type in **one fused parallel pass** over
/// *S*, instead of 8 serial re-scans. Returns `(global, per_type)` with
/// `per_type` in `CORRELATION_SCOPES` order.
///
/// Output is bit-identical to running the reference analysis once per
/// scope, at every worker count.
pub fn correlation_all_scopes(
    records: &[SampleRecord],
    s: &freshdyn::FreshDynamic,
    engine_count: usize,
    workers: usize,
) -> (CorrelationAnalysis, Vec<CorrelationAnalysis>) {
    let mut scopes: Vec<Option<FileType>> = vec![None];
    scopes.extend(CORRELATION_SCOPES.iter().map(|&ft| Some(ft)));
    let mut analyses = correlation::analyze_fused(
        records,
        s,
        engine_count,
        &scopes,
        CORRELATION_MAX_ROWS,
        workers,
    );
    let global = analyses.remove(0);
    (global, analyses)
}

/// Stage results being assembled; each registry entry fills its slot.
#[derive(Default)]
struct Draft {
    landscape: Option<(DatasetStats, Fig1Points)>,
    stability: Option<StabilityAnalysis>,
    metrics: Option<MetricsAnalysis>,
    window_growth: Option<f64>,
    intervals: Option<IntervalAnalysis>,
    categories_all: Option<CategorySweep>,
    categories_pe: Option<CategorySweep>,
    causes: Option<CauseAnalysis>,
    stabilization: Option<crate::stabilization::StabilizationOutput>,
    flips: Option<FlipAnalysis>,
    correlation: Option<(CorrelationAnalysis, Vec<CorrelationAnalysis>)>,
}

/// One registry entry: run a stage against the context and deposit its
/// output into the draft. Plain function pointers so the registry is a
/// static, allocation-free roster.
type StageFn = fn(&AnalysisCtx, &mut Draft);

/// The ordered stage roster [`analyze_records_obs`] executes. Each
/// entry pairs the stage's [`Analysis::name`] with the function that
/// runs it (timed, via [`Analysis::run_timed`]) and stores its output.
fn registry() -> Vec<(&'static str, StageFn)> {
    vec![
        (Landscape.name(), |ctx, d| {
            d.landscape = Some(Landscape.run_timed(ctx));
        }),
        (Stability.name(), |ctx, d| {
            d.stability = Some(Stability.run_timed(ctx));
        }),
        (Metrics.name(), |ctx, d| {
            d.metrics = Some(Metrics.run_timed(ctx));
        }),
        (WindowGrowth::default().name(), |ctx, d| {
            d.window_growth = Some(WindowGrowth::default().run_timed(ctx));
        }),
        (Intervals::default().name(), |ctx, d| {
            d.intervals = Some(Intervals::default().run_timed(ctx));
        }),
        (Categorize::ALL.name(), |ctx, d| {
            d.categories_all = Some(Categorize::ALL.run_timed(ctx));
        }),
        (Categorize::PE.name(), |ctx, d| {
            d.categories_pe = Some(Categorize::PE.run_timed(ctx));
        }),
        (Causes.name(), |ctx, d| {
            d.causes = Some(Causes.run_timed(ctx));
        }),
        (Stabilization.name(), |ctx, d| {
            d.stabilization = Some(Stabilization.run_timed(ctx));
        }),
        (Flips.name(), |ctx, d| {
            d.flips = Some(Flips.run_timed(ctx));
        }),
        (Correlation::default().name(), |ctx, d| {
            d.correlation = Some(Correlation::default().run_timed(ctx));
        }),
    ]
}

/// Names of every registered pipeline stage, in execution order. Every
/// name appears as a `pipeline/<name>` span in an instrumented run's
/// metrics.
pub fn stage_names() -> Vec<&'static str> {
    registry().into_iter().map(|(name, _)| name).collect()
}

impl Study {
    /// Generates the dataset with [`par::default_workers`] threads.
    pub fn generate(config: SimConfig) -> Self {
        Self::generate_with_workers(config, par::default_workers())
    }

    /// Generates the dataset with an explicit worker count (the
    /// parallelism ablation bench drives this).
    pub fn generate_with_workers(config: SimConfig, workers: usize) -> Self {
        Self::generate_with_workers_obs(config, workers, Obs::noop())
    }

    /// [`generate_with_workers`](Self::generate_with_workers) with
    /// per-worker instrumentation under the `generate` kernel and a
    /// `pipeline/generate` span. Generation is deterministic per sample
    /// ordinal, so the records are identical at every worker count and
    /// whether or not `obs` is enabled.
    pub fn generate_with_workers_obs(config: SimConfig, workers: usize, obs: &Obs) -> Self {
        let _span = obs.span("pipeline/generate");
        let sim = VirusTotalSim::new(config);
        let ranges = par::partition_ranges(config.samples, workers);
        let parts = par::map_ranges_obs(&ranges, obs, "generate", |_, range| {
            sim.trajectories_in(range)
                .map(|(meta, reports)| SampleRecord::new(meta, reports))
                .collect::<Vec<_>>()
        });
        let mut records = Vec::with_capacity(config.samples as usize);
        for part in parts {
            records.extend(part);
        }
        Self { sim, records }
    }

    /// The generated records.
    pub fn records(&self) -> &[SampleRecord] {
        &self.records
    }

    /// The simulator (fleet access for engine names/schedules).
    pub fn sim(&self) -> &VirusTotalSim {
        &self.sim
    }

    /// Loads every report into a fresh, sealed report store.
    pub fn build_store(&self) -> ReportStore {
        let store = ReportStore::new();
        for r in &self.records {
            store.append_batch(&r.reports);
        }
        store.seal();
        store
    }

    /// Runs the complete measurement pipeline.
    pub fn run(&self) -> StudyResults {
        // Storage round trip (Table 2).
        let store = self.build_store();
        analyze_records(
            &self.records,
            store.partition_stats(),
            self.sim.fleet(),
            self.sim.config().window_start(),
        )
    }

    /// [`run`](Self::run) with explicit parallelism and observability:
    /// ingestion goes through the fault-tolerant [`Collector`] over a
    /// fault-free feed (exercising — and instrumenting — the paper's
    /// actual collection path instead of bulk-loading the store), and
    /// every analysis stage runs under its `pipeline/<name>` span with
    /// `ctx.workers = workers`.
    ///
    /// Analysis fields are bit-identical to [`run`](Self::run) at every
    /// worker count and obs state; only the Table 2 byte accounting may
    /// differ from `run`'s (the collector packs blocks in emission
    /// order, `build_store` in sample order — the per-month report
    /// counts are identical).
    pub fn run_with_obs(&self, workers: usize, obs: &Obs) -> StudyResults {
        let reports: Vec<ScanReport> = self
            .records
            .iter()
            .flat_map(|r| r.reports.iter().cloned())
            .collect();
        let feed = FaultyFeed::new(reports, FaultPlan::clean(self.sim.config().seed));
        let outcome = Collector::default().run_with_obs(feed, obs);
        analyze_records_obs(
            &self.records,
            outcome.store.partition_stats(),
            self.sim.fleet(),
            self.sim.config().window_start(),
            workers,
            obs,
        )
    }
}

/// Runs every analysis of the paper over a record set — the entry point
/// when the data comes from somewhere other than an in-process
/// simulation (e.g. a persisted store loaded via
/// [`vt_store::read_store`] + [`crate::records::records_from_store`]).
///
/// `fleet` supplies the engine roster and update schedules for the
/// §5.5 cause attribution; when analyzing a foreign feed, construct it
/// with the fleet seed the feed was generated with (or accept that the
/// update-coincidence numbers are not meaningful).
pub fn analyze_records(
    records: &[SampleRecord],
    partitions: Vec<PartitionStats>,
    fleet: &EngineFleet,
    window_start: Timestamp,
) -> StudyResults {
    analyze_records_obs(
        records,
        partitions,
        fleet,
        window_start,
        par::default_workers(),
        Obs::noop(),
    )
}

/// [`analyze_records`] with explicit parallelism and observability:
/// builds the columnar [`TrajectoryTable`] under the `pipeline/table`
/// span (kernel `table_build`) and *S* from its flags under the
/// `pipeline/freshdyn` span, then executes the registry stages in order
/// against one [`AnalysisCtx`]. When `obs` is enabled,
/// [`StudyResults::stage_timings`] reports each stage's wall clock;
/// analysis outputs never depend on `obs` or `workers`.
pub fn analyze_records_obs(
    records: &[SampleRecord],
    partitions: Vec<PartitionStats>,
    fleet: &EngineFleet,
    window_start: Timestamp,
    workers: usize,
    obs: &Obs,
) -> StudyResults {
    let table = obs.time("pipeline/table", || {
        TrajectoryTable::build_with(records, window_start, workers, obs)
    });
    let s = obs.time("pipeline/freshdyn", || {
        freshdyn::build_from_table(&table, workers)
    });
    let ctx = AnalysisCtx::new(records, &table, &s, fleet, window_start)
        .with_workers(workers)
        .with_obs(obs);
    let mut draft = Draft::default();
    for (_, stage) in registry() {
        stage(&ctx, &mut draft);
    }

    let (dataset, fig1) = draft.landscape.expect("landscape stage ran");
    let stabilization = draft.stabilization.expect("stabilization stage ran");
    let (correlation_global, correlation_per_type) =
        draft.correlation.expect("correlation stage ran");
    StudyResults {
        dataset,
        fig1,
        partitions,
        stability: draft.stability.expect("stability stage ran"),
        s_samples: s.len() as u64,
        s_reports: s.reports,
        metrics: draft.metrics.expect("metrics stage ran"),
        window_growth: draft.window_growth.expect("window_growth stage ran"),
        intervals: draft.intervals.expect("intervals stage ran"),
        categories_all: draft.categories_all.expect("categorize_all stage ran"),
        categories_pe: draft.categories_pe.expect("categorize_pe stage ran"),
        causes: draft.causes.expect("causes stage ran"),
        rank_stabilization: stabilization.rank,
        label_stabilization_all: stabilization.label_all,
        label_stabilization_multi: stabilization.label_multi,
        flips: draft.flips.expect("flips stage ran"),
        correlation_global,
        correlation_per_type,
        stage_timings: stage_timings_from(obs),
    }
}

/// Extracts [`StageTiming`]s from the `pipeline/`-prefixed spans of an
/// enabled `Obs` (empty for a disabled one).
pub(crate) fn stage_timings_from(obs: &Obs) -> Vec<StageTiming> {
    if !obs.is_enabled() {
        return Vec::new();
    }
    obs.snapshot()
        .spans
        .into_iter()
        .filter_map(|(name, span)| {
            let stage = name.strip_prefix("pipeline/")?;
            Some(StageTiming {
                name: stage.to_string(),
                count: span.count,
                total_ns: span.total_ns,
                max_ns: span.max_ns,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> Study {
        Study::generate_with_workers(SimConfig::new(0xA11CE, 4_000), 2)
    }

    #[test]
    fn generation_is_deterministic_across_worker_counts() {
        let config = SimConfig::new(42, 500);
        let a = Study::generate_with_workers(config, 1);
        let b = Study::generate_with_workers(config, 4);
        assert_eq!(a.records().len(), b.records().len());
        for (x, y) in a.records().iter().zip(b.records()) {
            assert_eq!(x, y);
        }
        // Instrumented generation produces the same records and leaves
        // a per-worker busy-time trail.
        let obs = Obs::new();
        let c = Study::generate_with_workers_obs(config, 4, &obs);
        assert_eq!(a.records(), c.records());
        let m = obs.snapshot();
        assert_eq!(m.counter("par/generate/invocations"), Some(1));
        assert!(m.histogram("par/generate/worker_busy_ns").is_some());
        assert_eq!(m.span("pipeline/generate").map(|s| s.count), Some(1));
    }

    #[test]
    fn store_round_trip_preserves_reports() {
        let study = small_study();
        let store = study.build_store();
        let total: usize = study.records().iter().map(|r| r.reports.len()).sum();
        assert_eq!(store.report_count() as usize, total);
        // Spot-check one multi-report sample's trajectory through the
        // store.
        let rec = study
            .records()
            .iter()
            .find(|r| r.report_count() >= 3)
            .expect("some sample has 3+ reports");
        let from_store = store.sample_reports(rec.meta.hash);
        assert_eq!(from_store, rec.reports);
    }

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names = stage_names();
        assert_eq!(names.len(), 11);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate stage name");
        for expected in ["landscape", "stability", "flips", "correlation"] {
            assert!(names.contains(&expected), "missing stage {expected}");
        }
    }

    #[test]
    fn full_pipeline_produces_consistent_results() {
        let study = small_study();
        let results = study.run();

        // Dataset totals agree across paths.
        assert_eq!(results.dataset.total_samples(), 4_000);
        let partition_reports: u64 = results.partitions.iter().map(|p| p.reports).sum();
        assert_eq!(results.dataset.total_reports(), partition_reports);

        // The default path records no timings.
        assert!(results.stage_timings.is_empty());

        // Stable + dynamic = multi-report.
        let st = &results.stability;
        assert_eq!(st.stable + st.dynamic, st.multi_report_samples);

        // S is a subset of dynamic samples.
        assert!(results.s_samples <= st.dynamic);
        assert!(results.s_samples > 0, "study too small to exercise S");

        // Category shares partition.
        for sh in &results.categories_all.shares {
            assert!((sh.white + sh.black + sh.gray - 1.0).abs() < 1e-9);
        }

        // Flip totals decompose.
        let f = &results.flips;
        assert_eq!(f.flips, f.flips_up + f.flips_down);
        assert!(f.hazard_flips <= f.flips);

        // Correlation matrices are symmetric with unit diagonal.
        let c = &results.correlation_global;
        for a in 0..c.engine_count {
            assert_eq!(c.rho[a * c.engine_count + a], 1.0);
            for b in 0..c.engine_count {
                let ab = c.rho[a * c.engine_count + b];
                let ba = c.rho[b * c.engine_count + a];
                assert!(ab.is_nan() && ba.is_nan() || (ab - ba).abs() < 1e-12);
            }
        }

        // Rank stabilization is monotone in r.
        for w in results.rank_stabilization.windows(2) {
            assert!(w[1].stabilized >= w[0].stabilized);
        }
    }

    #[test]
    fn instrumented_run_times_every_stage() {
        let study = Study::generate_with_workers(SimConfig::new(0x0B5, 800), 2);
        let obs = Obs::new();
        let results = study.run_with_obs(2, &obs);
        let timed: Vec<&str> = results
            .stage_timings
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        for name in stage_names() {
            assert!(timed.contains(&name), "stage {name} missing a timing");
        }
        assert!(timed.contains(&"freshdyn"));
        assert!(timed.contains(&"table"));
        for t in &results.stage_timings {
            assert_eq!(t.count, 1, "stage {} ran once", t.name);
            assert!(t.max_ns <= t.total_ns);
        }
        // The collector path ingested every report.
        let m = obs.snapshot();
        let total: u64 = study.records().iter().map(|r| r.reports.len() as u64).sum();
        assert_eq!(m.counter("collector/accepted"), Some(total));
        assert_eq!(m.counter("collector/deduped"), Some(0));
    }

    /// Acceptance gate for the columnar pipeline: on two seeded
    /// studies, the complete [`StudyResults`] is bit-identical at
    /// workers 1, 2 and 8 — every field via its Debug fingerprint, the
    /// correlation ρ matrices additionally by f64 bit pattern (Debug
    /// would collapse distinct NaN payloads).
    #[test]
    fn pipeline_results_are_bit_identical_at_every_worker_count() {
        for seed in [0xBEA7u64, 0x1D1E5] {
            let study = Study::generate_with_workers(SimConfig::new(seed, 3_000), 2);
            let partitions = study.build_store().partition_stats();
            let run = |workers: usize| {
                analyze_records_obs(
                    study.records(),
                    partitions.clone(),
                    study.sim().fleet(),
                    study.sim().config().window_start(),
                    workers,
                    Obs::noop(),
                )
            };
            let base = run(1);
            assert!(base.s_samples > 0, "seed {seed:#x} too small to exercise S");
            let base_dbg = format!("{base:?}");
            for workers in [2usize, 8] {
                let other = run(workers);
                assert_eq!(
                    base_dbg,
                    format!("{other:?}"),
                    "seed={seed:#x} workers={workers}"
                );
                let pairs = std::iter::once(&base.correlation_global)
                    .chain(&base.correlation_per_type)
                    .zip(
                        std::iter::once(&other.correlation_global)
                            .chain(&other.correlation_per_type),
                    );
                for (a, b) in pairs {
                    assert_eq!(a.rho.len(), b.rho.len());
                    for (x, y) in a.rho.iter().zip(&b.rho) {
                        assert_eq!(x.to_bits(), y.to_bits(), "seed={seed:#x} workers={workers}");
                    }
                }
            }
        }
    }

    /// Acceptance gate for the fused kernel: on a seeded study, every
    /// scope's fused analysis is bit-identical (ρ matrix, strong pairs,
    /// groups, row accounting) to the reference per-scope analysis, at
    /// worker counts 1, 2 and 8.
    #[test]
    fn fused_correlation_matches_reference_on_seeded_study() {
        let study = small_study();
        let records = study.records();
        let s = freshdyn::build(records, study.sim().config().window_start());
        let engines = study.sim().fleet().engine_count();

        let mut scopes: Vec<Option<FileType>> = vec![None];
        scopes.extend(CORRELATION_SCOPES.iter().map(|&ft| Some(ft)));
        // A cap small enough to truncate the global scope, so the
        // strided row selection is exercised end to end.
        let max_rows = 500;
        let reference: Vec<CorrelationAnalysis> = scopes
            .iter()
            .map(|&sc| correlation::analyze_impl(records, &s, engines, sc, max_rows))
            .collect();
        assert!(reference[0].truncated, "global scope exceeds the cap");

        for workers in [1usize, 2, 8] {
            let fused =
                correlation::analyze_fused(records, &s, engines, &scopes, max_rows, workers);
            for (f, r) in fused.iter().zip(&reference) {
                assert_eq!(f.scope, r.scope);
                assert_eq!(f.rows, r.rows, "workers={workers}");
                assert_eq!(f.total_rows, r.total_rows, "workers={workers}");
                assert_eq!(f.truncated, r.truncated, "workers={workers}");
                assert_eq!(f.rho.len(), r.rho.len());
                for (x, y) in f.rho.iter().zip(&r.rho) {
                    assert_eq!(x.to_bits(), y.to_bits(), "workers={workers}");
                }
                assert_eq!(f.strong_pairs.len(), r.strong_pairs.len());
                for ((a1, b1, r1), (a2, b2, r2)) in f.strong_pairs.iter().zip(&r.strong_pairs) {
                    assert_eq!((a1, b1), (a2, b2), "workers={workers}");
                    assert_eq!(r1.to_bits(), r2.to_bits(), "workers={workers}");
                }
                assert_eq!(f.groups, r.groups, "workers={workers}");
            }
        }
    }
}
