//! End-to-end study orchestration: simulate → store → analyze.
//!
//! [`Study::generate`] produces the dataset (in parallel over sample
//! ordinals — generation is the expensive pass), routes every report
//! through the compressed [`vt_store::ReportStore`] (producing the
//! Table 2 accounting and exercising the storage substrate end to end),
//! and [`Study::run`] executes every analysis of the paper, returning a
//! [`StudyResults`] with one field per table/figure.

use crate::categorize::{self, CategorySweep};
use crate::causes::{self, CauseAnalysis};
use crate::correlation::{self, CorrelationAnalysis};
use crate::flips::{self, FlipAnalysis};
use crate::freshdyn;
use crate::intervals::{self, IntervalAnalysis};
use crate::landscape::{self, Fig1Points};
use crate::metrics::{self, MetricsAnalysis};
use crate::par;
use crate::records::SampleRecord;
use crate::stability::{self, StabilityAnalysis};
use crate::stabilization::{self, LabelStabilization, RankStabilization};
use vt_engines::EngineFleet;
use vt_model::time::{Duration, Timestamp};
use vt_model::FileType;
use vt_sim::{SimConfig, VirusTotalSim};
use vt_store::{DatasetStats, PartitionStats, ReportStore};

/// A generated dataset plus the machinery to analyze it.
#[derive(Debug)]
pub struct Study {
    sim: VirusTotalSim,
    records: Vec<SampleRecord>,
}

/// Every table and figure of the paper, as typed results.
#[derive(Debug)]
pub struct StudyResults {
    /// §4.2 dataset overview (Tables 2–3, Fig. 1 inputs).
    pub dataset: DatasetStats,
    /// Fig. 1 reference points.
    pub fig1: Fig1Points,
    /// Table 2: per-month store accounting.
    pub partitions: Vec<PartitionStats>,
    /// §5.1–5.2 (Obs. 1–2, Figs. 2–4).
    pub stability: StabilityAnalysis,
    /// |S| (paper: 32,051,433).
    pub s_samples: u64,
    /// Reports in S (paper: 109,142,027).
    pub s_reports: u64,
    /// §5.3.2–5.3.4 (Obs. 3–4, Figs. 5–6).
    pub metrics: MetricsAnalysis,
    /// §8.1: fraction of S whose Δ grows from a 1-month to a 3-month
    /// observation window (paper: 8.6%).
    pub window_growth: f64,
    /// §5.3.5 (Obs. 5, Fig. 7).
    pub intervals: IntervalAnalysis,
    /// §5.4 overall sweep (Fig. 8a).
    pub categories_all: CategorySweep,
    /// §5.4 PE sweep (Fig. 8b).
    pub categories_pe: CategorySweep,
    /// §5.5 (Obs. 7).
    pub causes: CauseAnalysis,
    /// §6.1 sweep over r = 0..=5 (Obs. 8).
    pub rank_stabilization: Vec<RankStabilization>,
    /// §6.2 over all of S (Fig. 9a).
    pub label_stabilization_all: Vec<LabelStabilization>,
    /// §6.2 excluding 2-scan samples (Fig. 9b).
    pub label_stabilization_multi: Vec<LabelStabilization>,
    /// §7.1 (Obs. 10, Fig. 10).
    pub flips: FlipAnalysis,
    /// §7.2 global (Fig. 11).
    pub correlation_global: CorrelationAnalysis,
    /// §7.2 per type (Fig. 12, Tables 4–8 + the DEX/GZIP quirks).
    pub correlation_per_type: Vec<CorrelationAnalysis>,
}

/// File types given a dedicated correlation analysis (the paper's top-5
/// tables plus the DEX and GZIP quirk scopes).
pub const CORRELATION_SCOPES: [FileType; 7] = [
    FileType::Win32Exe,
    FileType::Txt,
    FileType::Html,
    FileType::Zip,
    FileType::Pdf,
    FileType::Dex,
    FileType::Gzip,
];

/// Row cap for correlation matrices (keeps the O(pairs × rows) pass
/// bounded at large scales). When a scope exceeds the cap the rows are
/// strided evenly across it (see [`correlation::row_selected`]) and the
/// analysis is flagged `truncated` — never a silent prefix.
pub const CORRELATION_MAX_ROWS: usize = 400_000;

/// Runs the §7.2 correlation analysis for the global scope and every
/// [`CORRELATION_SCOPES`] file type in **one fused parallel pass** over
/// *S*, instead of 8 serial re-scans. Returns `(global, per_type)` with
/// `per_type` in `CORRELATION_SCOPES` order.
///
/// Output is bit-identical to calling [`correlation::analyze`] once per
/// scope, at every worker count.
pub fn correlation_all_scopes(
    records: &[SampleRecord],
    s: &freshdyn::FreshDynamic,
    engine_count: usize,
    workers: usize,
) -> (CorrelationAnalysis, Vec<CorrelationAnalysis>) {
    let mut scopes: Vec<Option<FileType>> = vec![None];
    scopes.extend(CORRELATION_SCOPES.iter().map(|&ft| Some(ft)));
    let mut analyses = correlation::analyze_fused(
        records,
        s,
        engine_count,
        &scopes,
        CORRELATION_MAX_ROWS,
        workers,
    );
    let global = analyses.remove(0);
    (global, analyses)
}

impl Study {
    /// Generates the dataset with [`par::default_workers`] threads.
    pub fn generate(config: SimConfig) -> Self {
        Self::generate_with_workers(config, par::default_workers())
    }

    /// Generates the dataset with an explicit worker count (the
    /// parallelism ablation bench drives this).
    pub fn generate_with_workers(config: SimConfig, workers: usize) -> Self {
        let sim = VirusTotalSim::new(config);
        let parts = par::map_partitions(config.samples, workers, |range| {
            sim.trajectories_in(range)
                .map(|(meta, reports)| SampleRecord::new(meta, reports))
                .collect::<Vec<_>>()
        });
        let mut records = Vec::with_capacity(config.samples as usize);
        for part in parts {
            records.extend(part);
        }
        Self { sim, records }
    }

    /// The generated records.
    pub fn records(&self) -> &[SampleRecord] {
        &self.records
    }

    /// The simulator (fleet access for engine names/schedules).
    pub fn sim(&self) -> &VirusTotalSim {
        &self.sim
    }

    /// Loads every report into a fresh, sealed report store.
    pub fn build_store(&self) -> ReportStore {
        let store = ReportStore::new();
        for r in &self.records {
            store.append_batch(&r.reports);
        }
        store.seal();
        store
    }

    /// Runs the complete measurement pipeline.
    pub fn run(&self) -> StudyResults {
        // Storage round trip (Table 2).
        let store = self.build_store();
        analyze_records(
            &self.records,
            store.partition_stats(),
            self.sim.fleet(),
            self.sim.config().window_start(),
        )
    }
}

/// Runs every analysis of the paper over a record set — the entry point
/// when the data comes from somewhere other than an in-process
/// simulation (e.g. a persisted store loaded via
/// [`vt_store::read_store`] + [`crate::records::records_from_store`]).
///
/// `fleet` supplies the engine roster and update schedules for the
/// §5.5 cause attribution; when analyzing a foreign feed, construct it
/// with the fleet seed the feed was generated with (or accept that the
/// update-coincidence numbers are not meaningful).
pub fn analyze_records(
    records: &[SampleRecord],
    partitions: Vec<PartitionStats>,
    fleet: &EngineFleet,
    window_start: Timestamp,
) -> StudyResults {
    // §4.
    let dataset = landscape::dataset_stats(records, window_start);
    let fig1 = landscape::fig1_points(&dataset);

    // §5.1–5.2.
    let stability = stability::analyze(records);

    // §5.3.
    let s = freshdyn::build(records, window_start);
    let metrics = metrics::analyze(records, &s);
    let window_growth =
        metrics::window_growth_fraction(records, &s, Duration::days(30), Duration::days(90));
    let intervals = intervals::analyze(records, &s, 430);

    // §5.4.
    let categories_all = categorize::sweep(records, &s, false);
    let categories_pe = categorize::sweep(records, &s, true);

    // §5.5.
    let causes = causes::analyze(records, &s, fleet);

    // §6.
    let rank_stabilization = stabilization::rank_stabilization(records, &s);
    let label_stabilization_all = stabilization::label_stabilization(records, &s, false);
    let label_stabilization_multi = stabilization::label_stabilization(records, &s, true);

    // §7. The 8 correlation scopes (global + per-type) come from one
    // fused parallel pass over S, not 8 serial re-scans.
    let engine_count = fleet.engine_count();
    let flips = flips::analyze(records, &s, engine_count);
    let (correlation_global, correlation_per_type) =
        correlation_all_scopes(records, &s, engine_count, par::default_workers());

    StudyResults {
        dataset,
        fig1,
        partitions,
        stability,
        s_samples: s.len() as u64,
        s_reports: s.reports,
        metrics,
        window_growth,
        intervals,
        categories_all,
        categories_pe,
        causes,
        rank_stabilization,
        label_stabilization_all,
        label_stabilization_multi,
        flips,
        correlation_global,
        correlation_per_type,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> Study {
        Study::generate_with_workers(SimConfig::new(0xA11CE, 4_000), 2)
    }

    #[test]
    fn generation_is_deterministic_across_worker_counts() {
        let config = SimConfig::new(42, 500);
        let a = Study::generate_with_workers(config, 1);
        let b = Study::generate_with_workers(config, 4);
        assert_eq!(a.records().len(), b.records().len());
        for (x, y) in a.records().iter().zip(b.records()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn store_round_trip_preserves_reports() {
        let study = small_study();
        let store = study.build_store();
        let total: usize = study.records().iter().map(|r| r.reports.len()).sum();
        assert_eq!(store.report_count() as usize, total);
        // Spot-check one multi-report sample's trajectory through the
        // store.
        let rec = study
            .records()
            .iter()
            .find(|r| r.report_count() >= 3)
            .expect("some sample has 3+ reports");
        let from_store = store.sample_reports(rec.meta.hash);
        assert_eq!(from_store, rec.reports);
    }

    #[test]
    fn full_pipeline_produces_consistent_results() {
        let study = small_study();
        let results = study.run();

        // Dataset totals agree across paths.
        assert_eq!(results.dataset.total_samples(), 4_000);
        let partition_reports: u64 = results.partitions.iter().map(|p| p.reports).sum();
        assert_eq!(results.dataset.total_reports(), partition_reports);

        // Stable + dynamic = multi-report.
        let st = &results.stability;
        assert_eq!(st.stable + st.dynamic, st.multi_report_samples);

        // S is a subset of dynamic samples.
        assert!(results.s_samples <= st.dynamic);
        assert!(results.s_samples > 0, "study too small to exercise S");

        // Category shares partition.
        for sh in &results.categories_all.shares {
            assert!((sh.white + sh.black + sh.gray - 1.0).abs() < 1e-9);
        }

        // Flip totals decompose.
        let f = &results.flips;
        assert_eq!(f.flips, f.flips_up + f.flips_down);
        assert!(f.hazard_flips <= f.flips);

        // Correlation matrices are symmetric with unit diagonal.
        let c = &results.correlation_global;
        for a in 0..c.engine_count {
            assert_eq!(c.rho[a * c.engine_count + a], 1.0);
            for b in 0..c.engine_count {
                let ab = c.rho[a * c.engine_count + b];
                let ba = c.rho[b * c.engine_count + a];
                assert!(ab.is_nan() && ba.is_nan() || (ab - ba).abs() < 1e-12);
            }
        }

        // Rank stabilization is monotone in r.
        for w in results.rank_stabilization.windows(2) {
            assert!(w[1].stabilized >= w[0].stabilized);
        }
    }

    /// Acceptance gate for the fused kernel: on a seeded study, every
    /// scope's fused analysis is bit-identical (ρ matrix, strong pairs,
    /// groups, row accounting) to the reference per-scope `analyze`, at
    /// worker counts 1, 2 and 8.
    #[test]
    fn fused_correlation_matches_reference_on_seeded_study() {
        let study = small_study();
        let records = study.records();
        let s = freshdyn::build(records, study.sim().config().window_start());
        let engines = study.sim().fleet().engine_count();

        let mut scopes: Vec<Option<FileType>> = vec![None];
        scopes.extend(CORRELATION_SCOPES.iter().map(|&ft| Some(ft)));
        // A cap small enough to truncate the global scope, so the
        // strided row selection is exercised end to end.
        let max_rows = 500;
        let reference: Vec<CorrelationAnalysis> = scopes
            .iter()
            .map(|&sc| correlation::analyze(records, &s, engines, sc, max_rows))
            .collect();
        assert!(reference[0].truncated, "global scope exceeds the cap");

        for workers in [1usize, 2, 8] {
            let fused =
                correlation::analyze_fused(records, &s, engines, &scopes, max_rows, workers);
            for (f, r) in fused.iter().zip(&reference) {
                assert_eq!(f.scope, r.scope);
                assert_eq!(f.rows, r.rows, "workers={workers}");
                assert_eq!(f.total_rows, r.total_rows, "workers={workers}");
                assert_eq!(f.truncated, r.truncated, "workers={workers}");
                assert_eq!(f.rho.len(), r.rho.len());
                for (x, y) in f.rho.iter().zip(&r.rho) {
                    assert_eq!(x.to_bits(), y.to_bits(), "workers={workers}");
                }
                assert_eq!(f.strong_pairs.len(), r.strong_pairs.len());
                for ((a1, b1, r1), (a2, b2, r2)) in f.strong_pairs.iter().zip(&r.strong_pairs) {
                    assert_eq!((a1, b1), (a2, b2), "workers={workers}");
                    assert_eq!(r1.to_bits(), r2.to_bits(), "workers={workers}");
                }
                assert_eq!(f.groups, r.groups, "workers={workers}");
            }
        }
    }
}
