//! The per-sample query index: hash → trajectory summary, built at
//! fold time, merged like any other Partial.
//!
//! The paper's object of study is an online scanner API answering
//! *per-hash* questions — "what does the platform say about this sample
//! now, and has its label stabilized?". The batch pipeline aggregates
//! those answers away; [`SampleIndex`] keeps them addressable. One
//! index partial is folded per sealed segment (from the segment's
//! records and its already-built [`TrajectoryTable`], so nothing is
//! re-decoded), and partials merge by column concatenation — the same
//! `merge(fold(x), fold(y)) == fold(x ++ y)` shape every analysis
//! stage upholds, which is what lets `vtld serve`'s merger thread
//! assemble the global index from shard-local accumulations in slot
//! order and publish it inside the same epoch-swapped snapshot as the
//! study results. Per-hash lookups are order-independent (samples are
//! disjoint across segments by the seal contract), and the only ranked
//! query ([`SampleIndex::top_flips`]) sorts by `(flips desc, hash asc)`
//! — deterministic at every shard and worker count.
//!
//! Per sample the index holds the full AV-Rank timeline (positives and
//! analysis minutes, CSR-packed), the membership flags the table
//! computed, the engine-label **flip count** (same definition as the
//! §7.1 stage: flips between *consecutive active* labels, `Undetected`
//! scans skipped), and a 9-bit **stabilization mask** — bit *i* set
//! when the sample's threshold-`FIG9_THRESHOLDS[i]` label sequence has
//! stabilized (§6.2).

use std::collections::HashMap;

use crate::records::SampleRecord;
use crate::stabilization::{stabilization_mask, FIG9_THRESHOLDS};
use crate::table::TrajectoryTable;
use vt_model::{FileType, SampleHash};

/// Per-sample membership flags, mirroring the [`TrajectoryTable`]
/// flag semantics (recomputed through its accessors, so the two can
/// never disagree).
mod flag {
    /// More than one report.
    pub const MULTI: u8 = 1 << 0;
    /// Δ = 0 over a non-empty trajectory.
    pub const STABLE: u8 = 1 << 1;
    /// First submitted inside the observation window.
    pub const FRESH: u8 = 1 << 2;
    /// Member of the fresh dynamic dataset *S*.
    pub const IN_S: u8 = 1 << 3;
}

/// An epoch-consistent, mergeable hash → trajectory-summary index.
///
/// Columnar: per-sample scalars sit in flat arrays, the per-report
/// timeline columns are CSR-packed behind `offsets`, and a hash map
/// resolves a [`SampleHash`] to its record slot. `fold` builds one from
/// a segment, `merge` concatenates two (disjoint sample sets, canonical
/// order) — the result answers per-hash queries identically however the
/// stream was segmented.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleIndex {
    hashes: Vec<SampleHash>,
    type_idx: Vec<u16>,
    flags: Vec<u8>,
    flips: Vec<u32>,
    stab_mask: Vec<u16>,
    offsets: Vec<u64>,
    positives: Vec<u32>,
    date_min: Vec<i64>,
    lookup: HashMap<SampleHash, u32>,
}

/// One sample's view into the index: everything a per-hash query verb
/// renders, borrowed straight from the columns.
#[derive(Debug, Clone, Copy)]
pub struct SampleSummary<'a> {
    /// The sample hash.
    pub hash: SampleHash,
    /// The sample's file type.
    pub file_type: FileType,
    /// AV-Rank (positives) timeline, analysis-date ascending.
    pub positives: &'a [u32],
    /// Analysis dates in minutes since the epoch, ascending.
    pub dates_min: &'a [i64],
    /// Engine-label flips across the trajectory (§7.1 definition).
    pub flips: u32,
    /// Bit *i* set ⇔ label-stabilized at `FIG9_THRESHOLDS[i]` (§6.2).
    pub stab_mask: u16,
    flags: u8,
}

impl SampleSummary<'_> {
    /// Number of reports on file.
    pub fn report_count(&self) -> usize {
        self.positives.len()
    }

    /// The current AV-Rank: the latest report's positives (0 with no
    /// reports).
    pub fn current_positives(&self) -> u32 {
        self.positives.last().copied().unwrap_or(0)
    }

    /// Minimum AV-Rank over the trajectory (0 with no reports).
    pub fn p_min(&self) -> u32 {
        self.positives.iter().copied().min().unwrap_or(0)
    }

    /// Maximum AV-Rank over the trajectory (0 with no reports).
    pub fn p_max(&self) -> u32 {
        self.positives.iter().copied().max().unwrap_or(0)
    }

    /// `Δ = p_max − p_min`; `None` with no reports.
    pub fn delta_max(&self) -> Option<u32> {
        (!self.positives.is_empty()).then(|| self.p_max() - self.p_min())
    }

    /// True with more than one report.
    pub fn is_multi_report(&self) -> bool {
        self.flags & flag::MULTI != 0
    }

    /// True when §5.1 *stable* (Δ = 0, non-empty).
    pub fn is_stable(&self) -> bool {
        self.flags & flag::STABLE != 0
    }

    /// True when first submitted inside the observation window.
    pub fn is_fresh(&self) -> bool {
        self.flags & flag::FRESH != 0
    }

    /// True when a member of the fresh dynamic dataset *S*.
    pub fn in_s(&self) -> bool {
        self.flags & flag::IN_S != 0
    }

    /// Whether the threshold-`t` label sequence has stabilized;
    /// `None` when `t` is not one of the 9 [`FIG9_THRESHOLDS`].
    pub fn stabilized_at(&self, t: u32) -> Option<bool> {
        FIG9_THRESHOLDS
            .iter()
            .position(|&ft| ft == t)
            .map(|i| self.stab_mask & (1 << i) != 0)
    }
}

/// Engine-label flips over one record's rows: walk the trajectory once
/// keeping, per engine, whether a label has been seen and what the last
/// *active* label was (two 128-bit mask planes) — exactly the §7.1
/// definition, `Undetected` scans skipped.
fn record_flips(table: &TrajectoryTable, i: usize) -> u32 {
    // State lives in one 4-word block — [seen lo, seen hi, prev lo,
    // prev hi] — and the per-row update is straight-line over the block
    // (no per-word loop), so the whole walk stays in vector registers.
    let mut state = [0u64; 4];
    let mut flips = 0u32;
    for row in table.rows(i) {
        let a = table.active_words(row);
        let d = table.detected_words(row);
        let both0 = a[0] & state[0];
        let both1 = a[1] & state[1];
        flips += ((state[2] ^ d[0]) & both0).count_ones();
        flips += ((state[3] ^ d[1]) & both1).count_ones();
        state[2] = (state[2] & !a[0]) | (d[0] & a[0]);
        state[3] = (state[3] & !a[1]) | (d[1] & a[1]);
        state[0] |= a[0];
        state[1] |= a[1];
    }
    flips
}

impl SampleIndex {
    /// Folds one sealed segment's table into an index partial — the
    /// columnar entry point: everything the index needs (including the
    /// sample hashes) now lives in the [`TrajectoryTable`], so no
    /// `SampleRecord` is touched and the zero-copy segment-fold path
    /// can index without ever materializing rows.
    pub fn fold_table(table: &TrajectoryTable) -> Self {
        let n = table.len();
        let rows = table.report_rows();
        let mut idx = SampleIndex {
            hashes: Vec::with_capacity(n),
            type_idx: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            flips: Vec::with_capacity(n),
            stab_mask: Vec::with_capacity(n),
            offsets: Vec::with_capacity(n + 1),
            positives: Vec::with_capacity(rows),
            date_min: Vec::with_capacity(rows),
            lookup: HashMap::with_capacity(n),
        };
        idx.offsets.push(0);
        for i in 0..n {
            let p = table.positives_of(i);
            let mut f = 0u8;
            f |= if table.is_multi_report(i) {
                flag::MULTI
            } else {
                0
            };
            f |= if table.is_stable(i) { flag::STABLE } else { 0 };
            f |= if table.is_fresh(i) { flag::FRESH } else { 0 };
            f |= if table.in_s(i) { flag::IN_S } else { 0 };

            let hash = table.hash(i);
            let slot = idx.hashes.len() as u32;
            idx.hashes.push(hash);
            idx.type_idx.push(table.type_idx(i) as u16);
            idx.flags.push(f);
            idx.flips.push(record_flips(table, i));
            idx.stab_mask.push(stabilization_mask(p));
            idx.positives.extend_from_slice(p);
            idx.date_min.extend_from_slice(table.dates_of(i));
            idx.offsets.push(idx.positives.len() as u64);
            let prior = idx.lookup.insert(hash, slot);
            debug_assert!(prior.is_none(), "segments hold whole, distinct samples");
        }
        idx
    }

    /// Row-path adapter over [`fold_table`](Self::fold_table): `records`
    /// and `table` must describe the same segment (the table already
    /// carries every column the index reads, hashes included).
    pub fn fold(records: &[SampleRecord], table: &TrajectoryTable) -> Self {
        assert_eq!(
            records.len(),
            table.len(),
            "records and table must cover the same segment"
        );
        Self::fold_table(table)
    }

    /// Merges a later accumulation into this one. The two must cover
    /// disjoint sample sets (the seal contract: a sample's whole
    /// trajectory lives in exactly one segment of one slot stream) —
    /// per-hash answers are then independent of the merge order, and
    /// [`top_flips`](Self::top_flips) orders explicitly.
    pub fn merge(mut self, next: Self) -> Self {
        let base = self.positives.len() as u64;
        let slot_base = self.hashes.len() as u32;
        for (k, v) in next.lookup {
            let prior = self.lookup.insert(k, slot_base + v);
            debug_assert!(prior.is_none(), "sample sets must be disjoint");
        }
        self.hashes.extend(next.hashes);
        self.type_idx.extend(next.type_idx);
        self.flags.extend(next.flags);
        self.flips.extend(next.flips);
        self.stab_mask.extend(next.stab_mask);
        self.positives.extend(next.positives);
        self.date_min.extend(next.date_min);
        self.offsets
            .extend(next.offsets.iter().skip(1).map(|o| base + o));
        self
    }

    /// Samples indexed.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Total report rows across every indexed sample.
    pub fn report_rows(&self) -> usize {
        self.positives.len()
    }

    /// Looks one sample up by hash.
    pub fn get(&self, hash: SampleHash) -> Option<SampleSummary<'_>> {
        let &slot = self.lookup.get(&hash)?;
        Some(self.summary(slot as usize))
    }

    fn summary(&self, i: usize) -> SampleSummary<'_> {
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        SampleSummary {
            hash: self.hashes[i],
            file_type: FileType::from_dense_index(self.type_idx[i] as usize),
            positives: &self.positives[range.clone()],
            dates_min: &self.date_min[range],
            flips: self.flips[i],
            stab_mask: self.stab_mask[i],
            flags: self.flags[i],
        }
    }

    /// The top-`k` flip leaders: samples ranked by engine-label flip
    /// count, ties broken by hash ascending — a total order, so the
    /// answer is identical however the index was assembled.
    pub fn top_flips(&self, k: usize) -> Vec<SampleSummary<'_>> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            self.flips[b]
                .cmp(&self.flips[a])
                .then_with(|| self.hashes[a].cmp(&self.hashes[b]))
        });
        order.truncate(k);
        order.into_iter().map(|i| self.summary(i)).collect()
    }

    /// Iterates every indexed summary (column order — only use where
    /// order does not matter or is re-sorted).
    pub fn iter(&self) -> impl Iterator<Item = SampleSummary<'_>> {
        (0..self.len()).map(|i| self.summary(i))
    }

    /// Sums the §6 stabilization masks over the fresh-dynamic samples:
    /// `counts[k]` is how many *S* members stabilized at
    /// [`FIG9_THRESHOLDS`]`[k]`, and the second value is |*S*| within
    /// this index. Addition over disjoint indexes, so per-slot answers
    /// sum to the global sweep — the serve tier's `recommend` verb is
    /// built on this, and the totals match the offline
    /// `label_stabilization_all` counts bit for bit.
    pub fn stab_counts_in_s(&self) -> ([u64; FIG9_THRESHOLDS.len()], u64) {
        let mut counts = [0u64; FIG9_THRESHOLDS.len()];
        let mut in_s = 0u64;
        for i in 0..self.len() {
            if self.flags[i] & flag::IN_S == 0 {
                continue;
            }
            in_s += 1;
            let mask = self.stab_mask[i];
            for (bit, count) in counts.iter_mut().enumerate() {
                *count += u64::from(mask >> bit & 1);
            }
        }
        (counts, in_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Analysis, AnalysisCtx};
    use crate::flips::Flips;
    use crate::freshdyn;
    use crate::pipeline::Study;
    use crate::stabilization::label_stabilization_index;
    use vt_obs::Obs;
    use vt_sim::SimConfig;

    fn study() -> Study {
        Study::generate_with_workers(SimConfig::new(0x1DE7, 2_000), 2)
    }

    fn build(records: &[SampleRecord], ws: vt_model::time::Timestamp) -> SampleIndex {
        let table = TrajectoryTable::build(records, ws);
        SampleIndex::fold(records, &table)
    }

    #[test]
    fn lookup_matches_records_and_table() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let table = TrajectoryTable::build(records, ws);
        let idx = SampleIndex::fold(records, &table);
        assert_eq!(idx.len(), records.len());
        assert_eq!(idx.report_rows(), table.report_rows());
        for (i, r) in records.iter().enumerate() {
            let s = idx.get(r.meta.hash).expect("indexed");
            assert_eq!(s.positives, table.positives_of(i), "record {i}");
            assert_eq!(s.dates_min, table.dates_of(i));
            assert_eq!(s.file_type, r.meta.file_type);
            assert_eq!(s.report_count(), r.reports.len());
            assert_eq!(
                s.current_positives(),
                r.positives().last().copied().unwrap_or(0)
            );
            assert_eq!(s.p_min(), table.p_min(i));
            assert_eq!(s.p_max(), table.p_max(i));
            assert_eq!(s.delta_max(), table.delta_max(i));
            assert_eq!(s.is_stable(), table.is_stable(i));
            assert_eq!(s.is_multi_report(), table.is_multi_report(i));
            assert_eq!(s.is_fresh(), table.is_fresh(i));
            assert_eq!(s.in_s(), table.in_s(i));
            for &t in &FIG9_THRESHOLDS {
                assert_eq!(
                    s.stabilized_at(t),
                    Some(label_stabilization_index(table.positives_of(i), t).is_some()),
                    "record {i} t={t}"
                );
            }
            assert_eq!(s.stabilized_at(3), None, "3 is not a Fig. 9 threshold");
        }
        assert!(idx.get(SampleHash(u128::MAX)).is_none());
    }

    #[test]
    fn merge_equals_fold_over_concatenation() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let whole = build(records, ws);
        for split in [1usize, 3, 7] {
            let chunk = records.len().div_ceil(split);
            let mut acc: Option<SampleIndex> = None;
            for seg in records.chunks(chunk) {
                let part = build(seg, ws);
                acc = Some(match acc {
                    None => part,
                    Some(a) => a.merge(part),
                });
            }
            let merged = acc.expect("non-empty study");
            assert_eq!(merged, whole, "split={split}");
        }
    }

    #[test]
    fn flip_counts_sum_to_the_flips_stage_totals() {
        // The §7.1 stage counts flips over the fresh dynamic dataset
        // *S* only; restricting the index's per-sample counts the same
        // way must reproduce the stage's global total exactly.
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let table = TrajectoryTable::build(records, ws);
        let s = freshdyn::build_from_table(&table, 2);
        let ctx = AnalysisCtx::new(records, &table, &s, study.sim().fleet(), ws).with_workers(2);
        let stage = Flips.run(&ctx);
        let idx = SampleIndex::fold(records, &table);
        let over_s: u64 = (0..records.len())
            .filter(|&i| table.in_s(i))
            .map(|i| u64::from(idx.get(records[i].meta.hash).unwrap().flips))
            .sum();
        assert!(stage.flips > 0, "study too small to flip");
        assert_eq!(over_s, stage.flips);
    }

    #[test]
    fn top_flips_is_a_total_order() {
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let idx = build(records, ws);
        let leaders = idx.top_flips(25);
        assert_eq!(leaders.len(), 25.min(idx.len()));
        for pair in leaders.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                a.flips > b.flips || (a.flips == b.flips && a.hash < b.hash),
                "ordering must be strict"
            );
        }
        assert!(leaders[0].flips > 0, "study too small to flip");
        // Assembling the index in a different segmentation cannot
        // change the ranked answer.
        let chunk = records.len().div_ceil(4);
        let mut acc: Option<SampleIndex> = None;
        for seg in records.chunks(chunk) {
            let part = build(seg, ws);
            acc = Some(match acc {
                None => part,
                Some(a) => a.merge(part),
            });
        }
        let merged = acc.unwrap();
        let again: Vec<_> = merged.top_flips(25).iter().map(|s| s.hash).collect();
        let first: Vec<_> = leaders.iter().map(|s| s.hash).collect();
        assert_eq!(again, first);
    }

    #[test]
    fn empty_index_answers_empty() {
        let idx = SampleIndex::default();
        assert!(idx.is_empty());
        assert!(idx.top_flips(5).is_empty());
        assert!(idx.get(SampleHash::from_ordinal(0)).is_none());
        let folded = build(&[], vt_model::time::Timestamp(0));
        assert_eq!(folded.len(), 0);
        assert_eq!(folded, folded.clone().merge(SampleIndex::default()));
    }

    #[test]
    fn obs_time_is_not_folded_into_the_index() {
        // The index must be a pure function of the records: two folds
        // of the same segment are equal (no timestamps, no randomness).
        let study = study();
        let records = study.records();
        let ws = study.sim().config().window_start();
        let obs = Obs::new();
        let t1 = TrajectoryTable::build_with(records, ws, 2, &obs);
        let a = SampleIndex::fold(records, &t1);
        let b = SampleIndex::fold(records, &t1);
        assert_eq!(a, b);
    }
}
