//! §5.3.2–§5.3.4 — the dynamics metrics δᵢ and Δᵢ (Obs. 3–4,
//! Figs. 5–6), plus the §8.1 measurement-window sweep.
//!
//! For each sample in *S* with AV-Rank sequence `p₁…pₙ`:
//! `δᵢ = |pᵢ − pᵢ₋₁|` (adjacent-scan difference, one value per adjacent
//! pair) and `Δ = p_max − p_min` (overall swing, one value per sample).

use crate::analysis::{Analysis, AnalysisCtx};
use crate::freshdyn::FreshDynamic;
use crate::par;
#[cfg(test)]
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;
use vt_model::time::Duration;
use vt_model::FileType;
use vt_stats::{BoxplotSummary, Histogram};

/// δ and Δ are bounded by the engine roster (≤ 128 engines), so a
/// `[u64; 129]` counting array per type replaces the per-observation
/// `Vec<f64>` buffers — peak memory scales with distinct values, and
/// [`BoxplotSummary::from_counts`] reproduces `from_unsorted` bit for
/// bit on integer data.
const DELTA_BOUND: usize = 129;

/// Per-file-type δ/Δ distributions (Fig. 6's boxes).
#[derive(Debug, Clone)]
pub struct TypeMetrics {
    /// The file type.
    pub file_type: FileType,
    /// Box summary of δ values (adjacent differences).
    pub delta_adjacent: Option<BoxplotSummary>,
    /// Box summary of Δ values (overall swing).
    pub delta_overall: Option<BoxplotSummary>,
}

/// Outcome of the δ/Δ analysis.
#[derive(Debug, Clone)]
pub struct MetricsAnalysis {
    /// Fig. 5: histogram of δ values across all adjacent pairs in *S*.
    pub delta_adjacent_hist: Histogram,
    /// Fig. 5: histogram of Δ values across samples of *S*.
    pub delta_overall_hist: Histogram,
    /// Fraction of adjacent pairs with δ = 0 (paper: 35.49%).
    pub delta_zero_fraction: f64,
    /// Fraction of samples with Δ > 2 (paper: ~half).
    pub delta_over_2_fraction: f64,
    /// Fraction of samples with Δ ≤ 11 (paper: 90%).
    pub delta_le_11_fraction: f64,
    /// Fig. 6: per-type box summaries, one entry per top-20 type.
    pub per_type: Vec<TypeMetrics>,
}

/// §5.3.2–§5.3.4 δ/Δ metrics stage: run via [`Analysis::run`] with an
/// [`AnalysisCtx`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Metrics;

impl Analysis for Metrics {
    type Output = MetricsAnalysis;
    type Partial = MetricsPartial;

    fn name(&self) -> &'static str {
        "metrics"
    }

    fn fold(&self, ctx: &AnalysisCtx) -> MetricsPartial {
        fold_columnar(ctx.table, ctx.s, ctx)
    }

    fn merge(&self, mut a: MetricsPartial, b: MetricsPartial) -> MetricsPartial {
        a.merge(&b);
        a
    }

    fn finish(&self, acc: &MetricsPartial) -> MetricsAnalysis {
        finish(acc)
    }
}

/// Mergeable accumulator of the δ/Δ fold ([`Metrics`]'s
/// [`Analysis::Partial`]): two global histograms plus flattened
/// `20 × DELTA_BOUND` counting arrays. Everything merges by addition.
#[derive(Debug, Clone)]
pub struct MetricsPartial {
    delta_adjacent_hist: Histogram,
    delta_overall_hist: Histogram,
    per_type_adjacent: Vec<u64>,
    per_type_overall: Vec<u64>,
}

impl MetricsPartial {
    fn new() -> Self {
        Self {
            delta_adjacent_hist: Histogram::new(71),
            delta_overall_hist: Histogram::new(71),
            per_type_adjacent: vec![0; 20 * DELTA_BOUND],
            per_type_overall: vec![0; 20 * DELTA_BOUND],
        }
    }

    pub(crate) fn merge(&mut self, other: &MetricsPartial) {
        self.delta_adjacent_hist.merge(&other.delta_adjacent_hist);
        self.delta_overall_hist.merge(&other.delta_overall_hist);
        for (a, b) in self
            .per_type_adjacent
            .iter_mut()
            .zip(&other.per_type_adjacent)
        {
            *a += b;
        }
        for (a, b) in self
            .per_type_overall
            .iter_mut()
            .zip(&other.per_type_overall)
        {
            *a += b;
        }
    }
}

fn fold_columnar(table: &TrajectoryTable, s: &FreshDynamic, ctx: &AnalysisCtx) -> MetricsPartial {
    let ranges = par::partition_ranges(s.indices.len() as u64, ctx.workers);
    let parts = par::map_ranges_obs(&ranges, ctx.obs, "metrics", |_, range| {
        let mut acc = MetricsPartial::new();
        for &i in &s.indices[range.start as usize..range.end as usize] {
            let p = table.positives_of(i);
            let type_idx = table.type_idx(i);
            debug_assert!(type_idx < 20, "S contains only top-20 types");
            for w in p.windows(2) {
                let d = w[0].abs_diff(w[1]);
                acc.delta_adjacent_hist.record(d as u64);
                acc.per_type_adjacent[type_idx * DELTA_BOUND + d as usize] += 1;
            }
            let delta = table.delta_max(i).unwrap_or(0);
            acc.delta_overall_hist.record(delta as u64);
            acc.per_type_overall[type_idx * DELTA_BOUND + delta as usize] += 1;
        }
        acc
    });
    let mut iter = parts.into_iter();
    let mut acc = iter.next().unwrap_or_else(MetricsPartial::new);
    for part in iter {
        acc.merge(&part);
    }
    acc
}

/// Turns the merged accumulator into the published analysis.
fn finish(acc: &MetricsPartial) -> MetricsAnalysis {
    let delta_zero_fraction = if acc.delta_adjacent_hist.total() == 0 {
        0.0
    } else {
        acc.delta_adjacent_hist.count(0) as f64 / acc.delta_adjacent_hist.total() as f64
    };
    let delta_over_2_fraction = 1.0 - acc.delta_overall_hist.fraction_le(2);
    let delta_le_11_fraction = acc.delta_overall_hist.fraction_le(11);

    let per_type = (0..20)
        .map(|idx| TypeMetrics {
            file_type: FileType::from_dense_index(idx),
            delta_adjacent: BoxplotSummary::from_counts(
                &acc.per_type_adjacent[idx * DELTA_BOUND..(idx + 1) * DELTA_BOUND],
            ),
            delta_overall: BoxplotSummary::from_counts(
                &acc.per_type_overall[idx * DELTA_BOUND..(idx + 1) * DELTA_BOUND],
            ),
        })
        .collect();

    MetricsAnalysis {
        delta_adjacent_hist: acc.delta_adjacent_hist.clone(),
        delta_overall_hist: acc.delta_overall_hist.clone(),
        delta_zero_fraction,
        delta_over_2_fraction,
        delta_le_11_fraction,
        per_type,
    }
}

/// §8.1 measurement-window sweep stage: the fraction of *S* whose Δ
/// grows when the observation window extends from `short` to `long`.
/// The pipeline default ([`WindowGrowth::default`]) is the paper's
/// 1-month → 3-month comparison.
#[derive(Debug, Clone, Copy)]
pub struct WindowGrowth {
    /// The short observation window.
    pub short: Duration,
    /// The long observation window.
    pub long: Duration,
}

impl Default for WindowGrowth {
    fn default() -> Self {
        Self {
            short: Duration::days(30),
            long: Duration::days(90),
        }
    }
}

impl Analysis for WindowGrowth {
    type Output = f64;
    type Partial = (u64, u64);

    fn name(&self) -> &'static str {
        "window_growth"
    }

    fn fold(&self, ctx: &AnalysisCtx) -> (u64, u64) {
        window_growth_columnar(ctx.table, ctx.s, self.short, self.long, ctx)
    }

    fn merge(&self, a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
        (a.0 + b.0, a.1 + b.1)
    }

    fn finish(&self, &(eligible, grew): &(u64, u64)) -> f64 {
        if eligible == 0 {
            0.0
        } else {
            grew as f64 / eligible as f64
        }
    }
}

/// Parallel §8.1 sweep over the table's date/rank columns; the
/// per-partition `(eligible, grew)` counters sum exactly.
fn window_growth_columnar(
    table: &TrajectoryTable,
    s: &FreshDynamic,
    short: Duration,
    long: Duration,
    ctx: &AnalysisCtx,
) -> (u64, u64) {
    let ranges = par::partition_ranges(s.indices.len() as u64, ctx.workers);
    let parts = par::map_ranges_obs(&ranges, ctx.obs, "window_growth", |_, range| {
        let mut eligible = 0u64;
        let mut grew = 0u64;
        for &i in &s.indices[range.start as usize..range.end as usize] {
            let dates = table.dates_of(i);
            let p = table.positives_of(i);
            let t0 = dates[0];
            let delta_within = |span: Duration| -> Option<u32> {
                let mut min = u32::MAX;
                let mut max = 0u32;
                let mut n = 0;
                for (&t, &rank) in dates.iter().zip(p) {
                    if t - t0 <= span.as_minutes() {
                        min = min.min(rank);
                        max = max.max(rank);
                        n += 1;
                    }
                }
                (n >= 2).then(|| max - min)
            };
            let (Some(d_short), Some(d_long)) = (delta_within(short), delta_within(long)) else {
                continue;
            };
            eligible += 1;
            if d_long > d_short {
                grew += 1;
            }
        }
        (eligible, grew)
    });
    parts
        .into_iter()
        .fold((0u64, 0u64), |(e, g), (pe, pg)| (e + pe, g + pg))
}

#[cfg(test)]
pub(crate) fn analyze_impl(records: &[SampleRecord], s: &FreshDynamic) -> MetricsAnalysis {
    let mut acc = MetricsPartial::new();
    for r in s.iter(records) {
        let type_idx = r.meta.file_type.dense_index();
        debug_assert!(type_idx < 20, "S contains only top-20 types");
        let mut prev: Option<u32> = None;
        for p in r.positives_iter() {
            if let Some(q) = prev {
                let d = q.abs_diff(p);
                acc.delta_adjacent_hist.record(d as u64);
                acc.per_type_adjacent[type_idx * DELTA_BOUND + d as usize] += 1;
            }
            prev = Some(p);
        }
        let delta = r.delta_max().unwrap_or(0);
        acc.delta_overall_hist.record(delta as u64);
        acc.per_type_overall[type_idx * DELTA_BOUND + delta as usize] += 1;
    }
    finish(&acc)
}

#[cfg(test)]
pub(crate) fn window_growth_impl(
    records: &[SampleRecord],
    s: &FreshDynamic,
    short: Duration,
    long: Duration,
) -> f64 {
    let mut eligible = 0u64;
    let mut grew = 0u64;
    for r in s.iter(records) {
        let t0 = r.reports[0].analysis_date;
        let delta_within = |span: Duration| -> Option<u32> {
            let mut min = u32::MAX;
            let mut max = 0u32;
            let mut n = 0;
            for rep in &r.reports {
                if rep.analysis_date - t0 <= span {
                    let p = rep.positives();
                    min = min.min(p);
                    max = max.max(p);
                    n += 1;
                }
            }
            (n >= 2).then(|| max - min)
        };
        let (Some(d_short), Some(d_long)) = (delta_within(short), delta_within(long)) else {
            continue;
        };
        eligible += 1;
        if d_long > d_short {
            grew += 1;
        }
    }
    if eligible == 0 {
        0.0
    } else {
        grew as f64 / eligible as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshdyn;
    use vt_model::time::{Date, Timestamp};
    use vt_model::{
        EngineId, GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict, VerdictVec,
    };

    fn record(i: u64, ft: FileType, positives_at_days: &[(i64, u32)]) -> SampleRecord {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = window + Duration::days(5);
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: ft,
            origin: first - Duration::days(1),
            first_submission: first,
            truth: GroundTruth::Benign,
        };
        let reports = positives_at_days
            .iter()
            .map(|&(day, p)| {
                let mut verdicts = VerdictVec::new(70);
                for e in 0..p {
                    verdicts.set(EngineId(e as u8), Verdict::Malicious);
                }
                ScanReport {
                    sample: meta.hash,
                    file_type: FileType::Pdf,
                    analysis_date: first + Duration::days(day),
                    last_submission_date: first,
                    times_submitted: 1,
                    kind: ReportKind::Upload,
                    verdicts,
                }
            })
            .collect();
        SampleRecord::new(meta, reports)
    }

    fn dataset() -> (Vec<SampleRecord>, FreshDynamic) {
        let records = vec![
            record(0, FileType::Win32Exe, &[(0, 5), (1, 5), (2, 8)]), // δ: 0, 3; Δ: 3
            record(1, FileType::Pdf, &[(0, 1), (9, 2)]),              // δ: 1; Δ: 1
        ];
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        (records, s)
    }

    #[test]
    fn delta_distributions() {
        let (records, s) = dataset();
        assert_eq!(s.len(), 2);
        let m = analyze_impl(&records, &s);
        // Adjacent pairs: {0, 3, 1} → one zero of three.
        assert!((m.delta_zero_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.delta_adjacent_hist.total(), 3);
        // Overall: {3, 1} → none above 2? 3 > 2, so half.
        assert!((m.delta_over_2_fraction - 0.5).abs() < 1e-12);
        assert_eq!(m.delta_le_11_fraction, 1.0);
    }

    #[test]
    fn per_type_boxes() {
        let (records, s) = dataset();
        let m = analyze_impl(&records, &s);
        let exe = m
            .per_type
            .iter()
            .find(|t| t.file_type == FileType::Win32Exe)
            .unwrap();
        let exe_adj = exe.delta_adjacent.unwrap();
        assert_eq!(exe_adj.n, 2);
        assert!((exe_adj.mean - 1.5).abs() < 1e-12);
        let pdf = m
            .per_type
            .iter()
            .find(|t| t.file_type == FileType::Pdf)
            .unwrap();
        assert_eq!(pdf.delta_overall.unwrap().n, 1);
        // Types absent from S have no box.
        let zip = m
            .per_type
            .iter()
            .find(|t| t.file_type == FileType::Zip)
            .unwrap();
        assert!(zip.delta_adjacent.is_none());
    }

    #[test]
    fn window_growth() {
        // Sample 0 grows Δ from day-1 window (Δ=0) to day-30 window
        // (Δ=3). Sample 1's second scan is outside the short window →
        // not eligible.
        let (records, s) = dataset();
        let frac = window_growth_impl(&records, &s, Duration::days(1), Duration::days(30));
        assert_eq!(frac, 1.0);
        // With both windows long, nothing grows.
        let frac2 = window_growth_impl(&records, &s, Duration::days(30), Duration::days(60));
        assert_eq!(frac2, 0.0);
    }
}
