//! Parallel partitioned map over index ranges.
//!
//! The analyses are CPU-bound batch passes over millions of samples —
//! exactly the workload the async guides say to keep off an async
//! runtime. [`map_partitions`] splits `0..n` into contiguous chunks,
//! runs a worker per chunk on crossbeam scoped threads, and returns the
//! per-chunk results in order, so any analysis whose accumulator merges
//! associatively parallelizes in three lines.

use std::num::NonZeroUsize;

/// Number of worker threads to use: the available parallelism, capped
/// at 16 (the passes are memory-bandwidth-bound beyond that).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}

/// Splits `0..n` into `workers` contiguous ranges, runs `f` on each
/// range on its own scoped thread, and returns the results in range
/// order. With `workers == 1` (or tiny `n`) it runs inline.
///
/// `f` must be deterministic per range for study reproducibility — all
/// callers derive their randomness from sample ordinals, never from
/// thread identity.
pub fn map_partitions<T, F>(n: u64, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<u64>) -> T + Sync,
{
    let workers = workers.max(1).min(n.max(1) as usize);
    if workers == 1 {
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(workers as u64);
    let ranges: Vec<std::ops::Range<u64>> = (0..workers as u64)
        .map(|w| {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(n);
            start..end
        })
        .filter(|r| !r.is_empty())
        .collect();
    let mut out: Vec<Option<T>> = (0..ranges.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for range in &ranges {
            let f = &f;
            handles.push(scope.spawn(move |_| f(range.clone())));
        }
        for (slot, handle) in out.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("analysis worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    out.into_iter().map(|t| t.expect("worker result")).collect()
}

/// Convenience: map partitions then fold the results into the first
/// one with `merge`.
pub fn map_reduce<T, F, M>(n: u64, workers: usize, f: F, mut merge: M) -> Option<T>
where
    T: Send,
    F: Fn(std::ops::Range<u64>) -> T + Sync,
    M: FnMut(&mut T, T),
{
    let parts = map_partitions(n, workers, f);
    let mut iter = parts.into_iter();
    let mut acc = iter.next()?;
    for part in iter {
        merge(&mut acc, part);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_range_exactly() {
        for n in [0u64, 1, 7, 100, 101] {
            for workers in [1usize, 2, 3, 8] {
                let parts = map_partitions(n, workers, |r| r.clone());
                let mut covered = 0u64;
                let mut expected_start = 0u64;
                for r in &parts {
                    assert_eq!(r.start, expected_start, "gap in coverage");
                    covered += r.end - r.start;
                    expected_start = r.end;
                }
                assert_eq!(covered, n, "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let n = 100_000u64;
        let serial: u64 = (0..n).map(|i| i * i % 97).sum();
        let parallel =
            map_reduce(n, 8, |r| r.map(|i| i * i % 97).sum::<u64>(), |a, b| *a += b).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn single_worker_runs_inline() {
        let parts = map_partitions(10, 1, |r| r.count());
        assert_eq!(parts, vec![10]);
    }

    #[test]
    fn empty_range() {
        let parts = map_partitions(0, 4, |r| r.count());
        assert_eq!(parts.iter().sum::<usize>(), 0);
    }
}
