//! Parallel partitioned map over index ranges.
//!
//! The analyses are CPU-bound batch passes over millions of samples —
//! exactly the workload the async guides say to keep off an async
//! runtime. [`map_partitions`] splits `0..n` into contiguous chunks,
//! runs a worker per chunk on crossbeam scoped threads, and returns the
//! per-chunk results in order, so any analysis whose accumulator merges
//! associatively parallelizes in three lines.

use std::num::NonZeroUsize;
use std::time::Instant;

use vt_obs::{saturating_ns, Obs};

/// Number of worker threads to use: the available parallelism, capped
/// at 16 (the passes are memory-bandwidth-bound beyond that).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}

/// The contiguous ranges [`map_partitions`] assigns to `workers`
/// threads over `0..n`. Public so multi-pass kernels (e.g. the fused
/// correlation kernel, which needs per-partition row offsets from a
/// counting pass before its accumulation pass) can align per-partition
/// state across passes: both passes call this with the same `(n,
/// workers)` and see the same split.
pub fn partition_ranges(n: u64, workers: usize) -> Vec<std::ops::Range<u64>> {
    let workers = workers.max(1).min(n.max(1) as usize);
    let chunk = n.div_ceil(workers as u64);
    (0..workers as u64)
        .map(|w| {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(n);
            start..end
        })
        .filter(|r| !r.is_empty())
        .collect()
}

/// Runs `f(partition_index, range)` for each range on its own scoped
/// thread and returns the results in range order. With one range it
/// runs inline.
///
/// `f` must be deterministic per range for study reproducibility — all
/// callers derive their randomness from sample ordinals, never from
/// thread identity.
pub fn map_ranges<T, F>(ranges: &[std::ops::Range<u64>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<u64>) -> T + Sync,
{
    if ranges.len() <= 1 {
        return ranges
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, r)| f(i, r))
            .collect();
    }
    let mut out: Vec<Option<T>> = (0..ranges.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, range) in ranges.iter().enumerate() {
            let f = &f;
            handles.push(scope.spawn(move |_| f(i, range.clone())));
        }
        for (slot, handle) in out.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("analysis worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    out.into_iter().map(|t| t.expect("worker result")).collect()
}

/// [`map_ranges`] with per-worker instrumentation: each range's wall
/// time lands in the `par/<kernel>/worker_busy_ns` histogram, the
/// spread between the slowest and the mean worker in the
/// `par/<kernel>/imbalance_pct` gauge (100 = perfectly balanced, 200 =
/// slowest worker ran twice the mean; high-water across invocations),
/// and each call bumps `par/<kernel>/invocations`.
///
/// Timing wraps whole ranges, never items, so the hot loop is
/// untouched; all recording happens on the calling thread after the
/// join. With a disabled `obs` this *is* [`map_ranges`] — results are
/// identical either way.
pub fn map_ranges_obs<T, F>(
    ranges: &[std::ops::Range<u64>],
    obs: &Obs,
    kernel: &str,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<u64>) -> T + Sync,
{
    if !obs.is_enabled() {
        return map_ranges(ranges, f);
    }
    let timed = map_ranges(ranges, |i, r| {
        let start = Instant::now();
        let out = f(i, r);
        (out, saturating_ns(start.elapsed()))
    });
    let busy = obs.histogram(&format!("par/{kernel}/worker_busy_ns"));
    let mut total_ns = 0u64;
    let mut max_ns = 0u64;
    let mut out = Vec::with_capacity(timed.len());
    for (t, ns) in timed {
        busy.observe(ns);
        total_ns = total_ns.saturating_add(ns);
        max_ns = max_ns.max(ns);
        out.push(t);
    }
    if !out.is_empty() && total_ns > 0 {
        let mean = total_ns as f64 / out.len() as f64;
        let pct = (max_ns as f64 / mean * 100.0).round() as u64;
        obs.gauge(&format!("par/{kernel}/imbalance_pct"))
            .set_max(pct);
    }
    obs.counter(&format!("par/{kernel}/invocations")).incr();
    out
}

/// [`map_ranges`], but each range additionally *owns* one payload from
/// `payloads` (moved into its worker). This is how the columnar table
/// build hands every worker a disjoint `&mut` window of the final
/// column buffers: the caller `split_at_mut`s the columns along the
/// range boundaries, and each worker writes its slice directly — no
/// per-worker allocation, no concat pass.
///
/// # Panics
/// Panics if `payloads.len() != ranges.len()`.
pub fn map_ranges_with<P, T, F>(ranges: &[std::ops::Range<u64>], payloads: Vec<P>, f: F) -> Vec<T>
where
    P: Send,
    T: Send,
    F: Fn(usize, std::ops::Range<u64>, P) -> T + Sync,
{
    assert_eq!(payloads.len(), ranges.len(), "one payload per range");
    if ranges.len() <= 1 {
        return ranges
            .iter()
            .cloned()
            .zip(payloads)
            .enumerate()
            .map(|(i, (r, p))| f(i, r, p))
            .collect();
    }
    let mut out: Vec<Option<T>> = (0..ranges.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, (range, payload)) in ranges.iter().zip(payloads).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move |_| f(i, range.clone(), payload)));
        }
        for (slot, handle) in out.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("analysis worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    out.into_iter().map(|t| t.expect("worker result")).collect()
}

/// [`map_ranges_with`] with the same per-worker instrumentation as
/// [`map_ranges_obs`] (`par/<kernel>/worker_busy_ns`,
/// `par/<kernel>/imbalance_pct`, `par/<kernel>/invocations`). With a
/// disabled `obs` this *is* [`map_ranges_with`].
pub fn map_ranges_with_obs<P, T, F>(
    ranges: &[std::ops::Range<u64>],
    payloads: Vec<P>,
    obs: &Obs,
    kernel: &str,
    f: F,
) -> Vec<T>
where
    P: Send,
    T: Send,
    F: Fn(usize, std::ops::Range<u64>, P) -> T + Sync,
{
    if !obs.is_enabled() {
        return map_ranges_with(ranges, payloads, f);
    }
    let timed = map_ranges_with(ranges, payloads, |i, r, p| {
        let start = Instant::now();
        let out = f(i, r, p);
        (out, saturating_ns(start.elapsed()))
    });
    let busy = obs.histogram(&format!("par/{kernel}/worker_busy_ns"));
    let mut total_ns = 0u64;
    let mut max_ns = 0u64;
    let mut out = Vec::with_capacity(timed.len());
    for (t, ns) in timed {
        busy.observe(ns);
        total_ns = total_ns.saturating_add(ns);
        max_ns = max_ns.max(ns);
        out.push(t);
    }
    if !out.is_empty() && total_ns > 0 {
        let mean = total_ns as f64 / out.len() as f64;
        let pct = (max_ns as f64 / mean * 100.0).round() as u64;
        obs.gauge(&format!("par/{kernel}/imbalance_pct"))
            .set_max(pct);
    }
    obs.counter(&format!("par/{kernel}/invocations")).incr();
    out
}

/// Splits `0..n` into `workers` contiguous ranges, runs `f` on each
/// range on its own scoped thread, and returns the results in range
/// order. With `workers == 1` (or tiny `n`) it runs inline.
///
/// `f` must be deterministic per range for study reproducibility — all
/// callers derive their randomness from sample ordinals, never from
/// thread identity.
pub fn map_partitions<T, F>(n: u64, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<u64>) -> T + Sync,
{
    map_ranges(&partition_ranges(n, workers), |_, r| f(r))
}

/// Convenience: map partitions then fold the results into the first
/// one with `merge`.
pub fn map_reduce<T, F, M>(n: u64, workers: usize, f: F, mut merge: M) -> Option<T>
where
    T: Send,
    F: Fn(std::ops::Range<u64>) -> T + Sync,
    M: FnMut(&mut T, T),
{
    let parts = map_partitions(n, workers, f);
    let mut iter = parts.into_iter();
    let mut acc = iter.next()?;
    for part in iter {
        merge(&mut acc, part);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_range_exactly() {
        for n in [0u64, 1, 7, 100, 101] {
            for workers in [1usize, 2, 3, 8] {
                let parts = map_partitions(n, workers, |r| r.clone());
                let mut covered = 0u64;
                let mut expected_start = 0u64;
                for r in &parts {
                    assert_eq!(r.start, expected_start, "gap in coverage");
                    covered += r.end - r.start;
                    expected_start = r.end;
                }
                assert_eq!(covered, n, "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let n = 100_000u64;
        let serial: u64 = (0..n).map(|i| i * i % 97).sum();
        let parallel =
            map_reduce(n, 8, |r| r.map(|i| i * i % 97).sum::<u64>(), |a, b| *a += b).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn single_worker_runs_inline() {
        let parts = map_partitions(10, 1, |r| r.count());
        assert_eq!(parts, vec![10]);
    }

    #[test]
    fn empty_range() {
        let parts = map_partitions(0, 4, |r| r.count());
        assert_eq!(parts.iter().sum::<usize>(), 0);
    }

    #[test]
    fn map_ranges_with_writes_disjoint_slices() {
        let n = 1_000u64;
        for workers in [1usize, 3, 8] {
            let ranges = partition_ranges(n, workers);
            let mut buf = vec![0u64; n as usize];
            let mut payloads = Vec::with_capacity(ranges.len());
            let mut rest = buf.as_mut_slice();
            for r in &ranges {
                let (head, tail) =
                    std::mem::take(&mut rest).split_at_mut((r.end - r.start) as usize);
                payloads.push(head);
                rest = tail;
            }
            map_ranges_with(&ranges, payloads, |_, r, slice: &mut [u64]| {
                for (k, i) in r.clone().enumerate() {
                    slice[k] = i * i % 97;
                }
            });
            let serial: Vec<u64> = (0..n).map(|i| i * i % 97).collect();
            assert_eq!(buf, serial, "workers={workers}");
        }
    }

    #[test]
    fn map_ranges_sees_stable_partition_indices() {
        let ranges = partition_ranges(100, 4);
        assert_eq!(ranges.len(), 4);
        // Two passes over the same ranges observe identical (index,
        // range) pairs — the property multi-pass kernels rely on.
        let a = map_ranges(&ranges, |i, r| (i, r));
        let b = map_ranges(&ranges, |i, r| (i, r));
        assert_eq!(a, b);
        for (i, (idx, r)) in a.iter().enumerate() {
            assert_eq!(i, *idx);
            assert_eq!(*r, ranges[i]);
        }
    }
}
