//! §5.1–§5.2 — stable vs. dynamic samples and the character of the
//! stable ones (Obs. 1–2, Figs. 2–4).
//!
//! *Stable* samples have a constant AV-Rank over all their scans
//! (Δ = 0); *dynamic* samples don't. Only multi-report samples are
//! measurable. The paper finds an almost exact 50/50 split, that 66.36%
//! of stable samples sit at AV-Rank 0, and that benign (rank-0) stable
//! samples hold their state longest.

use crate::analysis::{Analysis, AnalysisCtx};
use crate::par;
#[cfg(test)]
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;
use std::sync::Arc;
use vt_model::time::Duration;
use vt_stats::{BoxplotSummary, Histogram};

/// Outcome of the §5.1–5.2 analysis.
#[derive(Debug, Clone)]
pub struct StabilityAnalysis {
    /// Multi-report samples examined.
    pub multi_report_samples: u64,
    /// Stable samples (Δ = 0).
    pub stable: u64,
    /// Dynamic samples (Δ > 0).
    pub dynamic: u64,
    /// Fig. 2: reports-per-sample histogram of stable samples.
    pub stable_report_hist: Histogram,
    /// Fig. 2: reports-per-sample histogram of dynamic samples.
    pub dynamic_report_hist: Histogram,
    /// Fig. 3: histogram of the (constant) AV-Rank of stable samples.
    pub stable_rank_hist: Histogram,
    /// §5.2.1: scan-count statistics for stable samples at rank 0:
    /// (samples, scanned-exactly-twice, total scans).
    pub rank0_scans: (u64, u64, u64),
    /// §5.2.1: same for stable samples at rank > 0.
    pub rank_pos_scans: (u64, u64, u64),
    /// Fig. 4: per-AV-Rank box plots of the stable time span in days
    /// (rank capped at [`Self::RANK_CAP`]; entry `None` when no sample
    /// holds that rank).
    pub span_by_rank: Vec<Option<BoxplotSummary>>,
    /// Fraction of stable samples whose span is within 17 days
    /// (paper: ~one half).
    pub span_within_17d: f64,
    /// Fraction within 350 days (paper: >93%).
    pub span_within_350d: f64,
}

impl StabilityAnalysis {
    /// Ranks above this are folded into the last bucket of
    /// [`StabilityAnalysis::span_by_rank`].
    pub const RANK_CAP: usize = 20;

    /// Fraction of multi-report samples that are stable (paper: 49.9%).
    pub fn stable_fraction(&self) -> f64 {
        if self.multi_report_samples == 0 {
            0.0
        } else {
            self.stable as f64 / self.multi_report_samples as f64
        }
    }

    /// Fraction of stable samples at AV-Rank 0 (paper: 66.36%).
    pub fn stable_at_zero_fraction(&self) -> f64 {
        let total = self.stable_rank_hist.total();
        if total == 0 {
            0.0
        } else {
            self.stable_rank_hist.count(0) as f64 / total as f64
        }
    }

    /// Fraction of stable samples with AV-Rank ≤ 5 (paper: >80%).
    pub fn stable_le5_fraction(&self) -> f64 {
        self.stable_rank_hist.fraction_le(5)
    }

    /// §5.2.1's refinement: excluding 2-scan samples, the fraction of
    /// stable samples that are benign (rank 0) (paper: 81.7%).
    pub fn stable_benign_fraction_excluding_two_scans(&self) -> f64 {
        let zero = self.rank0_scans.0 - self.rank0_scans.1;
        let pos = self.rank_pos_scans.0 - self.rank_pos_scans.1;
        if zero + pos == 0 {
            0.0
        } else {
            zero as f64 / (zero + pos) as f64
        }
    }

    /// Mean scans of stable rank-0 samples (paper: 3.54).
    pub fn rank0_mean_scans(&self) -> f64 {
        if self.rank0_scans.0 == 0 {
            0.0
        } else {
            self.rank0_scans.2 as f64 / self.rank0_scans.0 as f64
        }
    }

    /// Mean scans of stable rank>0 samples (paper: 2.92).
    pub fn rank_pos_mean_scans(&self) -> f64 {
        if self.rank_pos_scans.0 == 0 {
            0.0
        } else {
            self.rank_pos_scans.2 as f64 / self.rank_pos_scans.0 as f64
        }
    }
}

/// §5.1–5.2 stability stage: run via [`Analysis::run`] with an
/// [`AnalysisCtx`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Stability;

impl Analysis for Stability {
    type Output = StabilityAnalysis;
    type Partial = StabilityPartial;

    fn name(&self) -> &'static str {
        "stability"
    }

    fn fold(&self, ctx: &AnalysisCtx) -> StabilityPartial {
        fold_columnar(ctx.table, ctx.workers, ctx)
    }

    fn merge(&self, mut a: StabilityPartial, b: StabilityPartial) -> StabilityPartial {
        a.merge(&b);
        a
    }

    fn finish(&self, acc: &StabilityPartial) -> StabilityAnalysis {
        let mut a = StabilityAnalysis {
            multi_report_samples: acc.multi,
            stable: acc.stable,
            dynamic: acc.dynamic,
            stable_report_hist: acc.stable_report_hist.clone(),
            dynamic_report_hist: acc.dynamic_report_hist.clone(),
            stable_rank_hist: acc.stable_rank_hist.clone(),
            rank0_scans: acc.rank0_scans,
            rank_pos_scans: acc.rank_pos_scans,
            span_by_rank: vec![None; StabilityAnalysis::RANK_CAP + 1],
            span_within_17d: 0.0,
            span_within_350d: 0.0,
        };
        // The rope concatenates per-bucket spans in chunk order, which
        // is partition/segment order — the exact sequence the old flat
        // vectors held before `from_unsorted` sorts them.
        let mut values: Vec<f64> = Vec::new();
        for bucket in 0..=StabilityAnalysis::RANK_CAP {
            values.clear();
            for chunk in &acc.spans {
                values.extend_from_slice(&chunk[bucket]);
            }
            a.span_by_rank[bucket] = BoxplotSummary::from_unsorted(&values);
        }
        if a.stable > 0 {
            a.span_within_17d = acc.within17 as f64 / a.stable as f64;
            a.span_within_350d = acc.within350 as f64 / a.stable as f64;
        }
        a
    }
}

/// Mergeable accumulator of the §5.1–5.2 fold ([`Stability`]'s
/// [`Analysis::Partial`]). Counters and histograms merge by addition;
/// the per-bucket span samples live in a rope of immutable
/// [`Arc`]-shared chunks (one per fold partition) concatenated in
/// stream order, so each bucket sees the exact serial sequence before
/// [`BoxplotSummary::from_unsorted`] sorts it while merge/clone of a
/// partial moves chunk pointers instead of copying span data.
#[derive(Debug, Clone)]
pub struct StabilityPartial {
    multi: u64,
    stable: u64,
    dynamic: u64,
    stable_report_hist: Histogram,
    dynamic_report_hist: Histogram,
    stable_rank_hist: Histogram,
    rank0_scans: (u64, u64, u64),
    rank_pos_scans: (u64, u64, u64),
    /// Rope of span chunks; each chunk holds `RANK_CAP + 1` bucket
    /// vectors from one fold partition.
    spans: Vec<Arc<Vec<Vec<f64>>>>,
    within17: u64,
    within350: u64,
}

impl StabilityPartial {
    fn new() -> Self {
        Self {
            multi: 0,
            stable: 0,
            dynamic: 0,
            stable_report_hist: Histogram::new(64),
            dynamic_report_hist: Histogram::new(64),
            stable_rank_hist: Histogram::new(71),
            rank0_scans: (0, 0, 0),
            rank_pos_scans: (0, 0, 0),
            spans: Vec::new(),
            within17: 0,
            within350: 0,
        }
    }

    pub(crate) fn merge(&mut self, other: &StabilityPartial) {
        self.multi += other.multi;
        self.stable += other.stable;
        self.dynamic += other.dynamic;
        self.stable_report_hist.merge(&other.stable_report_hist);
        self.dynamic_report_hist.merge(&other.dynamic_report_hist);
        self.stable_rank_hist.merge(&other.stable_rank_hist);
        self.rank0_scans.0 += other.rank0_scans.0;
        self.rank0_scans.1 += other.rank0_scans.1;
        self.rank0_scans.2 += other.rank0_scans.2;
        self.rank_pos_scans.0 += other.rank_pos_scans.0;
        self.rank_pos_scans.1 += other.rank_pos_scans.1;
        self.rank_pos_scans.2 += other.rank_pos_scans.2;
        self.spans.extend_from_slice(&other.spans);
        self.within17 += other.within17;
        self.within350 += other.within350;
    }
}

fn fold_columnar(table: &TrajectoryTable, workers: usize, ctx: &AnalysisCtx) -> StabilityPartial {
    let ranges = par::partition_ranges(table.len() as u64, workers);
    let parts = par::map_ranges_obs(&ranges, ctx.obs, "stability", |_, range| {
        let mut acc = StabilityPartial::new();
        let mut spans: Vec<Vec<f64>> = vec![Vec::new(); StabilityAnalysis::RANK_CAP + 1];
        for i in range.start as usize..range.end as usize {
            if !table.is_multi_report(i) {
                continue;
            }
            acc.multi += 1;
            let n = table.report_count(i) as u64;
            if table.is_stable(i) {
                acc.stable += 1;
                acc.stable_report_hist.record(n);
                let rank = table.positives_of(i)[0];
                acc.stable_rank_hist.record(rank as u64);
                let scans = (1, (n == 2) as u64, n);
                let bucket_scans = if rank == 0 {
                    &mut acc.rank0_scans
                } else {
                    &mut acc.rank_pos_scans
                };
                bucket_scans.0 += scans.0;
                bucket_scans.1 += scans.1;
                bucket_scans.2 += scans.2;
                let dates = table.dates_of(i);
                let span_days = Duration::minutes(dates[dates.len() - 1] - dates[0]).as_days_f64();
                let bucket = (rank as usize).min(StabilityAnalysis::RANK_CAP);
                spans[bucket].push(span_days);
                if span_days <= 17.0 {
                    acc.within17 += 1;
                }
                if span_days <= 350.0 {
                    acc.within350 += 1;
                }
            } else {
                acc.dynamic += 1;
                acc.dynamic_report_hist.record(n);
            }
        }
        if spans.iter().any(|b| !b.is_empty()) {
            acc.spans.push(Arc::new(spans));
        }
        acc
    });
    let mut iter = parts.into_iter();
    let mut acc = iter.next().unwrap_or_else(StabilityPartial::new);
    for part in iter {
        acc.merge(&part);
    }
    acc
}

#[cfg(test)]
pub(crate) fn analyze_impl(records: &[SampleRecord]) -> StabilityAnalysis {
    let mut a = StabilityAnalysis {
        multi_report_samples: 0,
        stable: 0,
        dynamic: 0,
        stable_report_hist: Histogram::new(64),
        dynamic_report_hist: Histogram::new(64),
        stable_rank_hist: Histogram::new(71),
        rank0_scans: (0, 0, 0),
        rank_pos_scans: (0, 0, 0),
        span_by_rank: vec![None; StabilityAnalysis::RANK_CAP + 1],
        span_within_17d: 0.0,
        span_within_350d: 0.0,
    };
    // Span samples per rank bucket, collected then summarized.
    let mut spans: Vec<Vec<f64>> = vec![Vec::new(); StabilityAnalysis::RANK_CAP + 1];
    let mut within17 = 0u64;
    let mut within350 = 0u64;
    for r in records {
        if !r.is_multi_report() {
            continue;
        }
        a.multi_report_samples += 1;
        let n = r.report_count() as u64;
        if r.is_stable() {
            a.stable += 1;
            a.stable_report_hist.record(n);
            let rank = r.reports[0].positives();
            a.stable_rank_hist.record(rank as u64);
            let scans = (1, (n == 2) as u64, n);
            if rank == 0 {
                a.rank0_scans.0 += scans.0;
                a.rank0_scans.1 += scans.1;
                a.rank0_scans.2 += scans.2;
            } else {
                a.rank_pos_scans.0 += scans.0;
                a.rank_pos_scans.1 += scans.1;
                a.rank_pos_scans.2 += scans.2;
            }
            let span_days = r.time_span().as_days_f64();
            let bucket = (rank as usize).min(StabilityAnalysis::RANK_CAP);
            spans[bucket].push(span_days);
            if span_days <= 17.0 {
                within17 += 1;
            }
            if span_days <= 350.0 {
                within350 += 1;
            }
        } else {
            a.dynamic += 1;
            a.dynamic_report_hist.record(n);
        }
    }
    for (bucket, values) in spans.into_iter().enumerate() {
        a.span_by_rank[bucket] = BoxplotSummary::from_unsorted(&values);
    }
    if a.stable > 0 {
        a.span_within_17d = within17 as f64 / a.stable as f64;
        a.span_within_350d = within350 as f64 / a.stable as f64;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Duration, Timestamp};
    use vt_model::{
        EngineId, FileType, GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict,
        VerdictVec,
    };

    fn record(i: u64, positives_seq: &[u32], gap_days: i64) -> SampleRecord {
        let t0 = Timestamp::from_date(Date::new(2021, 6, 1));
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: FileType::Pdf,
            origin: t0,
            first_submission: t0,
            truth: GroundTruth::Benign,
        };
        let reports = positives_seq
            .iter()
            .enumerate()
            .map(|(k, &p)| {
                let mut verdicts = VerdictVec::new(70);
                for e in 0..p {
                    verdicts.set(EngineId(e as u8), Verdict::Malicious);
                }
                ScanReport {
                    sample: meta.hash,
                    file_type: FileType::Pdf,
                    analysis_date: t0 + Duration::days(k as i64 * gap_days),
                    last_submission_date: t0,
                    times_submitted: 1,
                    kind: ReportKind::Upload,
                    verdicts,
                }
            })
            .collect();
        SampleRecord::new(meta, reports)
    }

    #[test]
    fn splits_stable_and_dynamic() {
        let records = vec![
            record(1, &[0, 0], 1),    // stable at 0
            record(2, &[3, 3, 3], 1), // stable at 3
            record(3, &[2, 5], 1),    // dynamic
            record(4, &[7], 1),       // single report: skipped
        ];
        let a = analyze_impl(&records);
        assert_eq!(a.multi_report_samples, 3);
        assert_eq!(a.stable, 2);
        assert_eq!(a.dynamic, 1);
        assert!((a.stable_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.stable_at_zero_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(a.stable_le5_fraction(), 1.0);
    }

    #[test]
    fn scan_count_statistics() {
        let records = vec![
            record(1, &[0, 0], 1),
            record(2, &[0, 0, 0, 0], 1),
            record(3, &[4, 4], 1),
        ];
        let a = analyze_impl(&records);
        assert_eq!(a.rank0_scans, (2, 1, 6));
        assert_eq!(a.rank_pos_scans, (1, 1, 2));
        assert_eq!(a.rank0_mean_scans(), 3.0);
        assert_eq!(a.rank_pos_mean_scans(), 2.0);
        // Excluding 2-scan: only the 4-scan rank-0 sample remains.
        assert_eq!(a.stable_benign_fraction_excluding_two_scans(), 1.0);
    }

    #[test]
    fn span_buckets() {
        let records = vec![
            record(1, &[0, 0], 10),  // span 10 days at rank 0
            record(2, &[0, 0], 40),  // span 40 days at rank 0
            record(3, &[25, 25], 2), // rank 25 → capped bucket
        ];
        let a = analyze_impl(&records);
        let rank0 = a.span_by_rank[0].expect("rank 0 box");
        assert_eq!(rank0.n, 2);
        assert!((rank0.mean - 25.0).abs() < 1e-9);
        assert!(a.span_by_rank[StabilityAnalysis::RANK_CAP].is_some());
        assert!(a.span_by_rank[3].is_none());
        assert!((a.span_within_17d - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.span_within_350d, 1.0);
    }
}
