//! Segment-at-a-time study evaluation: fold sealed segments as they
//! arrive, merge the cached partials, finish on demand.
//!
//! The batch pipeline ([`crate::pipeline::analyze_records_obs`]) is the
//! one-segment special case of this module: every [`Analysis`] stage is
//! a fold whose [`Analysis::Partial`] merges associatively across
//! contiguous record segments, so folding a stream segment by segment
//! and merging in arrival order produces partials — and therefore
//! finished [`StudyResults`] — **bit-identical** to re-running the
//! whole batch, at every worker count. That is the contract
//! `merge(fold(x), fold(y)) == fold(x ++ y)` every stage upholds (and
//! the segment-split tests in each stage module plus
//! `tests/end_to_end.rs` enforce).
//!
//! Segments must partition *samples* (never split one sample's
//! trajectory across segments — [`vt_store::SegmentWriter`] seals on
//! sample boundaries for exactly this reason) and be folded in stream
//! order, because some partials (correlation row planes) are
//! order-sensitive.
//!
//! ```
//! use vt_dynamics::incremental::IncrementalStudy;
//! use vt_dynamics::pipeline::Study;
//! use vt_obs::Obs;
//! use vt_sim::SimConfig;
//!
//! let study = Study::generate_with_workers(SimConfig::new(9, 600), 2);
//! let records = study.records();
//! let mut inc = IncrementalStudy::new(
//!     study.sim().fleet(),
//!     study.sim().config().window_start(),
//! );
//! for segment in records.chunks(250) {
//!     inc.fold_segment(segment, Obs::noop());
//! }
//! let results = inc.results(Vec::new(), Obs::noop());
//! let batch = study.run();
//! assert_eq!(
//!     format!("{:?}", results.dataset),
//!     format!("{:?}", batch.dataset),
//! );
//! ```

use crate::alerts::{Alert, AlertConfig, AlertEngine, AlertTotals};
use crate::analysis::{Analysis, AnalysisCtx};
use crate::categorize::{Categorize, CategorizePartial};
use crate::causes::{CauseAnalysis, Causes};
use crate::correlation::{Correlation, CorrelationPartial};
use crate::flips::{FlipAnalysis, Flips};
use crate::freshdyn;
use crate::index::SampleIndex;
use crate::intervals::{IntervalPartial, Intervals};
use crate::landscape::Landscape;
use crate::metrics::{Metrics, MetricsPartial, WindowGrowth};
use crate::par;
use crate::pipeline::{self, StudyResults};
use crate::records::SampleRecord;
use crate::stability::{Stability, StabilityPartial};
use crate::stabilization::{Stabilization, StabilizationPartial};
use crate::table::TrajectoryTable;
use vt_engines::EngineFleet;
use vt_model::time::Timestamp;
use vt_obs::Obs;
use vt_store::{DatasetStats, PartitionStats};

/// The cached, mergeable state of every pipeline stage after some
/// number of segment folds — one [`Analysis::Partial`] per registry
/// stage plus the *S* accounting the finished [`StudyResults`] reports
/// directly.
///
/// Cheap to clone relative to refolding (counters, histograms and the
/// correlation row plane — no report data), which is what lets
/// [`IncrementalStudy::results`] snapshot results mid-stream without
/// disturbing the accumulation.
#[derive(Debug, Clone)]
pub struct StudyPartials {
    landscape: DatasetStats,
    stability: StabilityPartial,
    metrics: MetricsPartial,
    window_growth: (u64, u64),
    intervals: IntervalPartial,
    categories_all: CategorizePartial,
    categories_pe: CategorizePartial,
    causes: CauseAnalysis,
    stabilization: StabilizationPartial,
    flips: FlipAnalysis,
    correlation: CorrelationPartial,
    s_samples: u64,
    s_reports: u64,
    segments: u64,
}

impl StudyPartials {
    /// Folds one segment's context through every registry stage (each
    /// under its `pipeline/<name>` span via [`Analysis::fold_timed`]).
    fn fold(ctx: &AnalysisCtx) -> Self {
        StudyPartials {
            landscape: Landscape.fold_timed(ctx),
            stability: Stability.fold_timed(ctx),
            metrics: Metrics.fold_timed(ctx),
            window_growth: WindowGrowth::default().fold_timed(ctx),
            intervals: Intervals::default().fold_timed(ctx),
            categories_all: Categorize::ALL.fold_timed(ctx),
            categories_pe: Categorize::PE.fold_timed(ctx),
            causes: Causes.fold_timed(ctx),
            stabilization: Stabilization.fold_timed(ctx),
            flips: Flips.fold_timed(ctx),
            correlation: Correlation::default().fold_timed(ctx),
            s_samples: ctx.s.len() as u64,
            s_reports: ctx.s.reports,
            segments: 1,
        }
    }

    /// Merges a later segment's partials into an earlier accumulation
    /// (`self`'s records precede `next`'s in stream order).
    ///
    /// Public because the serve tier's merger thread reassembles the
    /// global study from shard-local accumulations: merging each hash
    /// slot's partials in fixed slot order is `fold` over the canonical
    /// concatenation `slot 0 ++ slot 1 ++ …`, which is what makes the
    /// published snapshot bit-identical at every shard count. Callers
    /// must uphold the same contract as segment folds: `self` and
    /// `next` cover disjoint sample sets, concatenated in a canonical
    /// order every run agrees on.
    pub fn merge(mut self, next: Self) -> Self {
        self.merge_from(&next);
        self
    }

    /// [`merge`](Self::merge) without consuming either side: builds the
    /// merged accumulation from borrowed partials. This is the serve
    /// merge tree's per-publish primitive — internal nodes re-merge from
    /// cached children on every epoch, and cloning both children just to
    /// feed the owned path would double the per-publish memory traffic.
    pub fn merge_ref(&self, next: &Self) -> Self {
        let mut out = self.clone();
        out.merge_from(next);
        out
    }

    /// Field-wise by-ref merge both public entry points reduce to.
    /// Every stage partial merges by addition/extension, so borrowing
    /// `next` is bit-identical to consuming it.
    fn merge_from(&mut self, next: &Self) {
        self.landscape.merge(&next.landscape);
        self.stability.merge(&next.stability);
        self.metrics.merge(&next.metrics);
        self.window_growth.0 += next.window_growth.0;
        self.window_growth.1 += next.window_growth.1;
        self.intervals.merge(&next.intervals);
        self.categories_all.merge(&next.categories_all);
        self.categories_pe.merge(&next.categories_pe);
        self.causes.merge(&next.causes);
        self.stabilization.merge(&next.stabilization);
        self.flips.merge(&next.flips);
        self.correlation.merge_from(&next.correlation);
        self.s_samples += next.s_samples;
        self.s_reports += next.s_reports;
        self.segments += next.segments;
    }

    /// Segments folded into this accumulation.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Samples of *S* seen so far.
    pub fn s_samples(&self) -> u64 {
        self.s_samples
    }

    /// Reports across *S* seen so far.
    pub fn s_reports(&self) -> u64 {
        self.s_reports
    }

    /// The §6 stabilization accumulator — read by the streaming drift
    /// detectors ([`crate::alerts`]) to compare a segment delta against
    /// the running baseline.
    pub(crate) fn stabilization_partial(&self) -> &StabilizationPartial {
        &self.stabilization
    }

    /// Finishes every stage into a [`StudyResults`]. `partitions`
    /// supplies the Table 2 store accounting, which lives outside the
    /// analysis fold. Borrows the accumulation — finishing is a
    /// read-only projection, so it can run on every publish without
    /// cloning the partials or disturbing further folds.
    pub fn finish(&self, partitions: Vec<PartitionStats>, obs: &Obs) -> StudyResults {
        let (dataset, fig1) = Landscape.finish(&self.landscape);
        let stabilization = Stabilization.finish(&self.stabilization);
        let (correlation_global, correlation_per_type) =
            Correlation::default().finish(&self.correlation);
        StudyResults {
            dataset,
            fig1,
            partitions,
            stability: Stability.finish(&self.stability),
            s_samples: self.s_samples,
            s_reports: self.s_reports,
            metrics: Metrics.finish(&self.metrics),
            window_growth: WindowGrowth::default().finish(&self.window_growth),
            intervals: Intervals::default().finish(&self.intervals),
            categories_all: Categorize::ALL.finish(&self.categories_all),
            categories_pe: Categorize::PE.finish(&self.categories_pe),
            causes: Causes.finish(&self.causes),
            rank_stabilization: stabilization.rank,
            label_stabilization_all: stabilization.label_all,
            label_stabilization_multi: stabilization.label_multi,
            flips: Flips.finish(&self.flips),
            correlation_global,
            correlation_per_type,
            stage_timings: pipeline::stage_timings_from(obs),
        }
    }
}

/// The incremental study engine: feed it record segments as they seal,
/// ask it for full [`StudyResults`] whenever you like.
///
/// Folding a segment costs O(segment) — each new segment is tabled,
/// folded and merged into the cached [`StudyPartials`] without touching
/// any earlier segment's reports — where re-running the batch pipeline
/// would cost O(everything seen so far). `vtld serve` keeps one of
/// these per daemon and snapshots [`results`](Self::results) after
/// every segment.
#[derive(Debug, Clone)]
pub struct IncrementalStudy<'a> {
    fleet: &'a EngineFleet,
    window_start: Timestamp,
    workers: usize,
    partials: Option<StudyPartials>,
    indexing: bool,
    index: Option<SampleIndex>,
    alerts: Option<AlertEngine>,
}

impl<'a> IncrementalStudy<'a> {
    /// An empty study over a fleet and observation window, folding with
    /// [`par::default_workers`] threads.
    pub fn new(fleet: &'a EngineFleet, window_start: Timestamp) -> Self {
        Self {
            fleet,
            window_start,
            workers: par::default_workers(),
            partials: None,
            indexing: false,
            index: None,
            alerts: None,
        }
    }

    /// Overrides the worker count used by segment folds.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Additionally accumulates a per-sample [`SampleIndex`] at fold
    /// time (hash → trajectory summary; what the serve tier's per-hash
    /// query verbs answer from). Kept **outside** [`StudyPartials`] on
    /// purpose: the study fingerprint and the incremental-vs-batch
    /// bit-identity gates hash the partials' rendering, and the index
    /// is a query surface, not a study result.
    pub fn with_index(mut self) -> Self {
        self.indexing = true;
        self
    }

    /// Additionally runs the streaming drift detectors
    /// ([`crate::alerts`]) over every folded segment. Like the index,
    /// the alert state lives **outside** [`StudyPartials`]: alerts are
    /// a notification surface, not a study result, so the study
    /// fingerprint and the incremental-vs-batch bit-identity gates are
    /// untouched.
    pub fn with_alerts(mut self, config: AlertConfig) -> Self {
        self.alerts = Some(AlertEngine::new(config));
        self
    }

    /// Segments folded so far.
    pub fn segments(&self) -> u64 {
        self.partials.as_ref().map_or(0, StudyPartials::segments)
    }

    /// The cached accumulation, if any segment has been folded.
    pub fn partials(&self) -> Option<&StudyPartials> {
        self.partials.as_ref()
    }

    /// The accumulated per-sample index: `Some` once a segment has been
    /// folded on a [`with_index`](Self::with_index) study, `None`
    /// otherwise.
    pub fn index(&self) -> Option<&SampleIndex> {
        self.index.as_ref()
    }

    /// Drains drift alerts fired since the last drain (empty unless
    /// built [`with_alerts`](Self::with_alerts)), in key order.
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        self.alerts
            .as_mut()
            .map(AlertEngine::take_pending)
            .unwrap_or_default()
    }

    /// Cumulative drift-event totals (zero unless built
    /// [`with_alerts`](Self::with_alerts)).
    pub fn alert_totals(&self) -> AlertTotals {
        self.alerts
            .as_ref()
            .map(AlertEngine::totals)
            .unwrap_or_default()
    }

    /// Folds one sealed segment — a contiguous run of whole-sample
    /// records, in stream order — into the cached partials, under a
    /// `pipeline/segment` span (with the usual `pipeline/table`,
    /// `pipeline/freshdyn` and per-stage spans inside it).
    ///
    /// This is now a thin adapter over [`fold_table`](Self::fold_table):
    /// it builds the segment's columnar table and folds that. Callers
    /// holding a sealed [`vt_store::ReportStore`] should prefer
    /// [`fold_store`](Self::fold_store), which skips the
    /// `Vec<SampleRecord>` materialization entirely.
    pub fn fold_segment(&mut self, records: &[SampleRecord], obs: &Obs) {
        let _span = obs.span("pipeline/segment");
        let table = obs.time("pipeline/table", || {
            TrajectoryTable::build_with(records, self.window_start, self.workers, obs)
        });
        self.fold_table_inner(&table, obs);
    }

    /// Folds one sealed segment straight out of its report store: the
    /// store's blocks stream into `arena` (reused across calls — its
    /// row buffer keeps capacity between segments, so a steady-state
    /// worker stops allocating), the columnar table is built from the
    /// arena with no `Vec<ScanReport>`/`Vec<SampleRecord>` round-trip,
    /// and the table is folded exactly like
    /// [`fold_table`](Self::fold_table). Returns the number of samples
    /// folded.
    ///
    /// Bit-identical to `fold_segment(&records_from_store(store))` —
    /// the arena path sorts decoded rows by `(hash, analysis_date,
    /// arrival)`, which is the same canonical order the record
    /// materialization produces.
    pub fn fold_store(
        &mut self,
        store: &vt_store::ReportStore,
        arena: &mut crate::arena::DecodeArena,
        obs: &Obs,
    ) -> usize {
        let _span = obs.span("pipeline/segment");
        let table = obs.time("pipeline/table", || {
            arena.clear();
            store.for_each_row(arena);
            TrajectoryTable::build_from_arena(arena, self.window_start, self.workers, obs)
        });
        let samples = table.len();
        self.fold_table_inner(&table, obs);
        samples
    }

    /// Folds one sealed segment's columnar table — however it was built
    /// — into the cached partials. This is the core fold entry point:
    /// [`fold_segment`](Self::fold_segment) and
    /// [`fold_store`](Self::fold_store) both construct a table and land
    /// here. The table must cover whole samples (never split one
    /// sample's trajectory across tables) and tables must be folded in
    /// stream order.
    pub fn fold_table(&mut self, table: &TrajectoryTable, obs: &Obs) {
        let _span = obs.span("pipeline/segment");
        self.fold_table_inner(table, obs);
    }

    /// Shared tail of the fold entry points (caller owns the
    /// `pipeline/segment` span).
    fn fold_table_inner(&mut self, table: &TrajectoryTable, obs: &Obs) {
        let s = obs.time("pipeline/freshdyn", || {
            freshdyn::build_from_table(table, self.workers)
        });
        // Every stage fold is table-only, so the context carries no
        // records — the zero-copy store path never materializes them.
        let ctx = AnalysisCtx::new(&[], table, &s, self.fleet, self.window_start)
            .with_workers(self.workers)
            .with_obs(obs);
        let seg = StudyPartials::fold(&ctx);
        if let Some(engine) = self.alerts.as_mut() {
            // Observe the segment delta against the accumulation of all
            // *prior* segments, before the merge below folds it in.
            obs.time("pipeline/alerts", || {
                engine.observe_segment(self.partials.as_ref(), &seg, table)
            });
        }
        if self.indexing {
            let part = obs.time("pipeline/index", || SampleIndex::fold_table(table));
            self.index = Some(match self.index.take() {
                None => part,
                Some(acc) => acc.merge(part),
            });
        }
        self.partials = Some(match self.partials.take() {
            None => seg,
            Some(acc) => acc.merge(seg),
        });
    }

    /// Finishes the accumulated partials into full [`StudyResults`]
    /// (bit-identical to the batch pipeline over the concatenation of
    /// every folded segment). `partitions` supplies the Table 2 store
    /// accounting, which lives outside the analysis fold.
    ///
    /// Borrows the cached partials — no clone, accumulation continues
    /// unaffected — so this can be called after every segment.
    pub fn results(&self, partitions: Vec<PartitionStats>, obs: &Obs) -> StudyResults {
        match &self.partials {
            Some(p) => p.finish(partitions, obs),
            // Nothing folded yet: the fold of zero segments is the fold
            // of an empty one.
            None => {
                let table = TrajectoryTable::build_with(&[], self.window_start, 1, obs);
                let s = freshdyn::build_from_table(&table, 1);
                let ctx = AnalysisCtx::new(&[], &table, &s, self.fleet, self.window_start)
                    .with_workers(self.workers)
                    .with_obs(obs);
                StudyPartials::fold(&ctx).finish(partitions, obs)
            }
        }
    }
}

/// Month-wise accumulation of per-segment Table 2 store accounting.
/// Months append in first-seen order, so merging slot vectors in
/// canonical slot order reproduces the flat left-to-right scan exactly.
pub fn merge_partition_stats(acc: &mut Vec<PartitionStats>, seg: &[PartitionStats]) {
    for stat in seg {
        match acc.iter_mut().find(|a| a.month == stat.month) {
            Some(a) => {
                a.reports += stat.reports;
                a.raw_bytes += stat.raw_bytes;
                a.stored_bytes += stat.stored_bytes;
            }
            None => acc.push(*stat),
        }
    }
}

/// A binary merge tree over fixed accumulation slots: cached
/// internal-node [`StudyPartials`] (and [`PartitionStats`]) so that
/// updating one slot re-merges only the log₂(slots) nodes on its
/// root path instead of re-merging every slot from scratch.
///
/// The tree shape is fixed — node `i` covers the contiguous slot range
/// of its subtree, children merge left-before-right — so the root
/// equals the flat left-to-right fold over slots `0..n`. By the
/// committed `merge(fold(x), fold(y)) == fold(x ++ y)` algebra
/// (associative over the canonical concatenation, with an empty slot as
/// identity), the cached root is **bit-identical** to re-merging every
/// slot in order, which is what `vtld serve` publishes per epoch.
#[derive(Debug, Clone)]
pub struct SlotMergeTree {
    /// Leaf count, rounded up to a power of two.
    slots: usize,
    /// Heap layout: `nodes[slots + s]` is slot `s`'s leaf,
    /// `nodes[i] = merge(nodes[2i], nodes[2i+1])`, `nodes[1]` the root.
    nodes: Vec<Option<StudyPartials>>,
    /// The same tree over Table 2 store accounting.
    partitions: Vec<Vec<PartitionStats>>,
}

impl SlotMergeTree {
    /// An empty tree over `slots` leaves.
    pub fn new(slots: usize) -> Self {
        let slots = slots.next_power_of_two().max(1);
        Self {
            slots,
            nodes: vec![None; 2 * slots],
            partitions: vec![Vec::new(); 2 * slots],
        }
    }

    /// Leaves in the tree.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Replaces one slot's accumulation and re-merges the nodes on its
    /// root path — O(log slots) merges of cached partials, independent
    /// of how many other slots hold history.
    pub fn update_slot(
        &mut self,
        slot: usize,
        partials: Option<StudyPartials>,
        partitions: Vec<PartitionStats>,
    ) {
        assert!(slot < self.slots, "slot {slot} out of range {}", self.slots);
        let mut i = self.slots + slot;
        self.nodes[i] = partials;
        self.partitions[i] = partitions;
        while i > 1 {
            i /= 2;
            let (l, r) = (2 * i, 2 * i + 1);
            self.nodes[i] = match (&self.nodes[l], &self.nodes[r]) {
                (Some(a), Some(b)) => Some(a.merge_ref(b)),
                (Some(a), None) => Some(a.clone()),
                (None, Some(b)) => Some(b.clone()),
                (None, None) => None,
            };
            let mut parts = self.partitions[l].clone();
            merge_partition_stats(&mut parts, &self.partitions[r]);
            self.partitions[i] = parts;
        }
    }

    /// The cached merge over every slot in canonical order (`None`
    /// while every slot is empty).
    pub fn root(&self) -> Option<&StudyPartials> {
        self.nodes[1].as_ref()
    }

    /// The cached month-wise store accounting over every slot.
    pub fn root_partitions(&self) -> &[PartitionStats] {
        &self.partitions[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{analyze_records_obs, Study};
    use vt_sim::SimConfig;

    #[test]
    fn incremental_matches_batch_across_segmentations() {
        let study = Study::generate_with_workers(SimConfig::new(0x5E6, 2_000), 2);
        let records = study.records();
        let partitions = study.build_store().partition_stats();
        let batch = analyze_records_obs(
            records,
            partitions.clone(),
            study.sim().fleet(),
            study.sim().config().window_start(),
            2,
            Obs::noop(),
        );
        assert!(batch.s_samples > 0, "study too small to exercise S");
        let batch_dbg = format!("{batch:?}");
        for segments in [1usize, 4] {
            let mut inc =
                IncrementalStudy::new(study.sim().fleet(), study.sim().config().window_start())
                    .with_workers(2);
            let chunk = records.len().div_ceil(segments);
            for seg in records.chunks(chunk) {
                inc.fold_segment(seg, Obs::noop());
            }
            assert_eq!(inc.segments(), segments as u64);
            let results = inc.results(partitions.clone(), Obs::noop());
            assert_eq!(batch_dbg, format!("{results:?}"), "segments={segments}");
        }
    }

    #[test]
    fn with_index_accumulates_the_whole_fold() {
        let study = Study::generate_with_workers(SimConfig::new(0x1D0, 900), 2);
        let records = study.records();
        let ws = study.sim().config().window_start();
        let obs = Obs::new();
        let mut inc = IncrementalStudy::new(study.sim().fleet(), ws)
            .with_workers(2)
            .with_index();
        assert!(inc.index().is_none(), "nothing folded yet");
        for seg in records.chunks(records.len().div_ceil(3)) {
            inc.fold_segment(seg, &obs);
        }
        let table = TrajectoryTable::build_with(records, ws, 2, Obs::noop());
        let whole = SampleIndex::fold(records, &table);
        assert_eq!(inc.index(), Some(&whole));
        assert_eq!(
            obs.snapshot().span("pipeline/index").map(|s| s.count),
            Some(3)
        );
        // Indexing must not perturb the study results themselves.
        let mut plain = IncrementalStudy::new(study.sim().fleet(), ws).with_workers(2);
        for seg in records.chunks(records.len().div_ceil(3)) {
            plain.fold_segment(seg, Obs::noop());
        }
        assert!(plain.index().is_none());
        let a = inc.results(Vec::new(), Obs::noop());
        let b = plain.results(Vec::new(), Obs::noop());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn empty_study_matches_batch_over_no_records() {
        let study = Study::generate_with_workers(SimConfig::new(3, 50), 1);
        let inc = IncrementalStudy::new(study.sim().fleet(), study.sim().config().window_start());
        assert_eq!(inc.segments(), 0);
        assert!(inc.partials().is_none());
        let results = inc.results(Vec::new(), Obs::noop());
        let batch = analyze_records_obs(
            &[],
            Vec::new(),
            study.sim().fleet(),
            study.sim().config().window_start(),
            1,
            Obs::noop(),
        );
        assert_eq!(format!("{results:?}"), format!("{batch:?}"));
    }

    #[test]
    fn slot_merge_tree_root_matches_flat_merge_in_slot_order() {
        let study = Study::generate_with_workers(SimConfig::new(0x7EE, 1_500), 2);
        let records = study.records();
        let ws = study.sim().config().window_start();
        const SLOTS: usize = 8;
        // Route samples into fixed hash slots as `vtld serve` does.
        let mut slot_records: Vec<Vec<SampleRecord>> = vec![Vec::new(); SLOTS];
        for r in records {
            slot_records[(r.meta.hash.0 % SLOTS as u128) as usize].push(r.clone());
        }
        assert!(
            slot_records.iter().filter(|s| !s.is_empty()).count() >= 4,
            "fixture must populate several slots"
        );
        let mut tree = SlotMergeTree::new(SLOTS);
        assert!(tree.root().is_none(), "empty tree has no accumulation");
        let mut studies: Vec<IncrementalStudy<'_>> = (0..SLOTS)
            .map(|_| IncrementalStudy::new(study.sim().fleet(), ws).with_workers(2))
            .collect();
        // Fold each slot's stream in two segments (interleaved across
        // slots, like a live shard fleet), updating its leaf after every
        // fold and checking the cached root against the flat
        // left-to-right slot merge it must stay bit-identical to.
        for pass in 0..2 {
            for (slot, recs) in slot_records.iter().enumerate() {
                let half = recs.len() / 2;
                let seg = if pass == 0 {
                    &recs[..half]
                } else {
                    &recs[half..]
                };
                studies[slot].fold_segment(seg, Obs::noop());
                tree.update_slot(slot, studies[slot].partials().cloned(), Vec::new());
                let flat = studies
                    .iter()
                    .filter_map(|st| st.partials().cloned())
                    .reduce(StudyPartials::merge)
                    .expect("at least one slot folded");
                assert_eq!(
                    format!(
                        "{:?}",
                        tree.root().expect("root").finish(Vec::new(), Obs::noop())
                    ),
                    format!("{:?}", flat.finish(Vec::new(), Obs::noop())),
                    "slot {slot} pass {pass}"
                );
            }
        }
    }

    #[test]
    fn slot_merge_tree_partitions_match_flat_first_seen_order() {
        use vt_model::time::Month;
        let month = |i: usize| Some(Month::COLLECTION_START.plus(i));
        let stat = |m: Option<Month>, reports: u64| PartitionStats {
            month: m,
            reports,
            raw_bytes: reports * 10,
            stored_bytes: reports * 3,
        };
        let per_slot: Vec<Vec<PartitionStats>> = vec![
            vec![stat(month(2), 5), stat(month(0), 1)],
            vec![],
            vec![stat(month(0), 2), stat(None, 7)],
            vec![stat(month(1), 4)],
            vec![stat(month(2), 9)],
        ];
        let mut tree = SlotMergeTree::new(8);
        // Update out of slot order — the cached result must still equal
        // the flat slot-0..8 scan.
        for &slot in &[4usize, 0, 2, 3, 1] {
            tree.update_slot(slot, None, per_slot.get(slot).cloned().unwrap_or_default());
        }
        let mut flat = Vec::new();
        for parts in &per_slot {
            merge_partition_stats(&mut flat, parts);
        }
        assert_eq!(tree.root_partitions(), flat.as_slice());
        assert_eq!(flat[0].month, month(2), "first-seen order preserved");
        assert_eq!(flat[0].reports, 14, "slot 0 and 4 months accumulate");
    }

    #[test]
    fn fold_segment_records_segment_spans_and_snapshots_do_not_disturb() {
        let study = Study::generate_with_workers(SimConfig::new(0xACC, 600), 2);
        let records = study.records();
        let obs = Obs::new();
        let mut inc =
            IncrementalStudy::new(study.sim().fleet(), study.sim().config().window_start())
                .with_workers(2);
        let mid = records.len() / 2;
        inc.fold_segment(&records[..mid], &obs);
        // A mid-stream snapshot must not change what later folds see.
        let _early = inc.results(Vec::new(), Obs::noop());
        inc.fold_segment(&records[mid..], &obs);
        let snap = obs.snapshot();
        assert_eq!(snap.span("pipeline/segment").map(|s| s.count), Some(2));
        assert_eq!(snap.span("pipeline/flips").map(|s| s.count), Some(2));
        let results = inc.results(Vec::new(), Obs::noop());
        let batch = analyze_records_obs(
            records,
            Vec::new(),
            study.sim().fleet(),
            study.sim().config().window_start(),
            2,
            Obs::noop(),
        );
        assert_eq!(format!("{results:?}"), format!("{batch:?}"));
    }
}
