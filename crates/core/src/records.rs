//! The unit of analysis: one sample and its time-ordered reports.
//!
//! Every analysis consumes `&[SampleRecord]`. Records come from the
//! simulator (via [`crate::pipeline::Study`]) or from a sealed
//! [`vt_store::ReportStore`] joined with sample metadata — either way
//! the analyses only read what the paper's pipeline could read from
//! scan reports (hash, file type, times, verdict vectors), never the
//! simulator's ground truth.

use vt_model::time::Duration;
use vt_model::{FileType, SampleMeta, ScanReport};

/// One sample's metadata and complete, analysis-time-ordered report
/// trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Sample metadata. Analyses use `hash`, `file_type` and
    /// `first_submission`; ground truth is never read.
    pub meta: SampleMeta,
    /// Reports sorted by `analysis_date` ascending.
    pub reports: Vec<ScanReport>,
}

impl SampleRecord {
    /// Builds a record, sorting reports by analysis date.
    pub fn new(meta: SampleMeta, mut reports: Vec<ScanReport>) -> Self {
        reports.sort_by_key(|r| r.analysis_date);
        Self { meta, reports }
    }

    /// Number of reports.
    pub fn report_count(&self) -> usize {
        self.reports.len()
    }

    /// True if the sample has more than one report (the measurable
    /// subset for dynamics, §5.1).
    pub fn is_multi_report(&self) -> bool {
        self.reports.len() > 1
    }

    /// The AV-Rank (positives) sequence.
    pub fn positives(&self) -> Vec<u32> {
        self.positives_iter().collect()
    }

    /// The AV-Rank sequence without the `Vec` — one popcount per
    /// report, nothing heap-allocated.
    pub fn positives_iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.reports.iter().map(|r| r.positives())
    }

    /// `Δ = p_max − p_min` over the trajectory; `None` with no reports.
    pub fn delta_max(&self) -> Option<u32> {
        let mut it = self.positives_iter();
        let first = it.next()?;
        let (min, max) = it.fold((first, first), |(lo, hi), p| (lo.min(p), hi.max(p)));
        Some(max - min)
    }

    /// True when every report has the same AV-Rank (a §5.1 *stable*
    /// sample). Only meaningful for multi-report samples.
    pub fn is_stable(&self) -> bool {
        self.delta_max() == Some(0)
    }

    /// Time between first and last report.
    pub fn time_span(&self) -> Duration {
        match (self.reports.first(), self.reports.last()) {
            (Some(a), Some(b)) => b.analysis_date - a.analysis_date,
            _ => Duration::minutes(0),
        }
    }

    /// The file type.
    pub fn file_type(&self) -> FileType {
        self.meta.file_type
    }
}

/// Reconstructs analysis records from a sealed report store — the
/// paper's situation exactly: *only* the scan reports are available, so
/// sample metadata must be derived from them:
///
/// * `file_type` — carried in every report (§4.1);
/// * `first_submission` — the earliest `last_submission_date` across the
///   sample's reports (fresh samples were first uploaded in-window;
///   pre-existing samples re-enter via rescans that preserve their
///   original pre-window submission date, §3 / Table 1);
/// * `origin` and `truth` are *not derivable from reports* and are set
///   to placeholder values — no analysis reads them (the blinding
///   invariant), so records from a store analyze identically to records
///   from the simulator.
pub fn records_from_store(store: &vt_store::ReportStore) -> Vec<SampleRecord> {
    store
        .group_by_sample()
        .into_iter()
        .map(|(hash, reports)| {
            let first = reports.first().expect("groups are nonempty");
            let first_submission = reports
                .iter()
                .map(|r| r.last_submission_date)
                .min()
                .expect("nonempty");
            let meta = SampleMeta {
                hash,
                file_type: first.file_type,
                origin: first_submission,
                first_submission,
                truth: vt_model::GroundTruth::Benign,
            };
            SampleRecord { meta, reports }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_model::time::{Date, Timestamp};
    use vt_model::{EngineId, GroundTruth, ReportKind, SampleHash, Verdict, VerdictVec};

    fn meta() -> SampleMeta {
        let t = Timestamp::from_date(Date::new(2021, 6, 1));
        SampleMeta {
            hash: SampleHash::from_ordinal(1),
            file_type: FileType::Pdf,
            origin: t,
            first_submission: t,
            truth: GroundTruth::Benign,
        }
    }

    fn report(day: i64, positives: u32) -> ScanReport {
        let mut verdicts = VerdictVec::new(70);
        for i in 0..positives {
            verdicts.set(EngineId(i as u8), Verdict::Malicious);
        }
        ScanReport {
            sample: SampleHash::from_ordinal(1),
            file_type: FileType::Pdf,
            analysis_date: Timestamp::from_date(Date::new(2021, 6, 1)) + Duration::days(day),
            last_submission_date: Timestamp::from_date(Date::new(2021, 6, 1)),
            times_submitted: 1,
            kind: ReportKind::Upload,
            verdicts,
        }
    }

    #[test]
    fn sorts_reports_and_computes_metrics() {
        let r = SampleRecord::new(meta(), vec![report(5, 7), report(0, 3), report(2, 5)]);
        assert_eq!(r.positives(), vec![3, 5, 7]);
        assert_eq!(r.delta_max(), Some(4));
        assert!(!r.is_stable());
        assert!(r.is_multi_report());
        assert_eq!(r.time_span().as_days(), 5);
    }

    #[test]
    fn stable_sample() {
        let r = SampleRecord::new(meta(), vec![report(0, 2), report(9, 2)]);
        assert!(r.is_stable());
        assert_eq!(r.delta_max(), Some(0));
    }

    #[test]
    fn single_report_sample() {
        let r = SampleRecord::new(meta(), vec![report(0, 1)]);
        assert!(!r.is_multi_report());
        assert_eq!(r.delta_max(), Some(0));
        assert_eq!(r.time_span().as_minutes(), 0);
    }

    #[test]
    fn empty_record() {
        let r = SampleRecord::new(meta(), vec![]);
        assert_eq!(r.delta_max(), None);
        assert_eq!(r.report_count(), 0);
    }
}
