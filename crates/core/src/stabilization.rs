//! §6 — label stabilization (Obs. 8–9, Fig. 9).
//!
//! Two questions, both over the fresh dynamic dataset *S*:
//!
//! 1. **AV-Rank stabilization** (§6.1): does the positives sequence
//!    eventually settle? A sample *reaches stability under fluctuation
//!    range r* if some suffix of ≥2 reports has `max − min ≤ r`. The
//!    paper sweeps r = 0..=5 (10.9% at r = 0 up to 88.11% at r = 5) and
//!    reports >90% of stabilizing samples settle within 30 days.
//! 2. **File-label stabilization** (§6.2): under a threshold t, the
//!    B/M label sequence stabilizes when a constant suffix (≥2 labels)
//!    begins; the paper reports the mean serial number of the
//!    stabilizing scan and the mean days to stability per t, with and
//!    without 2-scan samples (Fig. 9a/9b).

use crate::analysis::{Analysis, AnalysisCtx};
use crate::freshdyn::FreshDynamic;
use crate::par;
#[cfg(test)]
use crate::records::SampleRecord;
use crate::table::TrajectoryTable;
#[cfg(test)]
use vt_aggregate::{stabilization_index, LabelSequence, Threshold};
use vt_model::time::Duration;

/// Combined §6 output: the r-sweep plus both Fig. 9 variants.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilizationOutput {
    /// §6.1 sweep over r = 0..=5 (Obs. 8).
    pub rank: Vec<RankStabilization>,
    /// §6.2 over all of *S* (Fig. 9a).
    pub label_all: Vec<LabelStabilization>,
    /// §6.2 excluding 2-scan samples (Fig. 9b).
    pub label_multi: Vec<LabelStabilization>,
}

/// §6 stabilization stage: run via [`Analysis::run`] with an
/// [`AnalysisCtx`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Stabilization;

impl Analysis for Stabilization {
    type Output = StabilizationOutput;
    type Partial = StabilizationPartial;

    fn name(&self) -> &'static str {
        "stabilization"
    }

    fn fold(&self, ctx: &AnalysisCtx) -> StabilizationPartial {
        StabilizationPartial {
            rank: rank_stabilization_columnar(ctx.table, ctx.s, ctx),
            label_all: label_stabilization_columnar(ctx.table, ctx.s, false, ctx),
            label_multi: label_stabilization_columnar(ctx.table, ctx.s, true, ctx),
        }
    }

    fn merge(&self, mut a: StabilizationPartial, b: StabilizationPartial) -> StabilizationPartial {
        a.merge(&b);
        a
    }

    fn finish(&self, acc: &StabilizationPartial) -> StabilizationOutput {
        StabilizationOutput {
            rank: acc.rank.clone(),
            label_all: acc
                .label_all
                .iter()
                .copied()
                .map(LabelAcc::finish)
                .collect(),
            label_multi: acc
                .label_multi
                .iter()
                .copied()
                .map(LabelAcc::finish)
                .collect(),
        }
    }
}

/// Mergeable accumulator of the §6 fold ([`Stabilization`]'s
/// [`Analysis::Partial`]): the r-sweep counter blocks plus per-threshold
/// integer accumulators for both Fig. 9 variants. All fields merge by
/// addition, so per-segment partials combine exactly — the means are
/// only formed in `finish`.
#[derive(Debug, Clone)]
pub struct StabilizationPartial {
    rank: Vec<RankStabilization>,
    label_all: Vec<LabelAcc>,
    label_multi: Vec<LabelAcc>,
}

impl StabilizationPartial {
    /// Per-threshold `(t, stabilized, minutes_sum)` totals of the
    /// all-samples Fig. 9 variant — the view the streaming regression
    /// detector ([`crate::alerts`]) compares segment-vs-baseline.
    pub(crate) fn label_all_totals(&self) -> impl Iterator<Item = (u32, u64, u64)> + '_ {
        self.label_all
            .iter()
            .map(|a| (a.t, a.stabilized, a.minutes_sum))
    }

    pub(crate) fn merge(&mut self, other: &StabilizationPartial) {
        debug_assert_eq!(self.rank.len(), other.rank.len());
        for (a, b) in self.rank.iter_mut().zip(&other.rank) {
            debug_assert_eq!(a.r, b.r);
            a.samples += b.samples;
            a.stabilized += b.stabilized;
            a.within_10d += b.within_10d;
            a.within_20d += b.within_20d;
            a.within_30d += b.within_30d;
        }
        for (a, b) in self.label_all.iter_mut().zip(&other.label_all) {
            a.merge(*b);
        }
        for (a, b) in self.label_multi.iter_mut().zip(&other.label_multi) {
            a.merge(*b);
        }
    }
}

/// Per-threshold integer accumulator for one Fig. 9 variant. The serial
/// and elapsed-minutes sums stay integral (scan serials and scan
/// timestamps are whole minutes), which makes the accumulation
/// associative — any segment split merges to the same sums bit for bit.
#[derive(Debug, Clone, Copy)]
struct LabelAcc {
    t: u32,
    samples: u64,
    stabilized: u64,
    serial_sum: u64,
    minutes_sum: u64,
    within_15: u64,
    within_30: u64,
}

impl LabelAcc {
    fn new(t: u32) -> Self {
        Self {
            t,
            samples: 0,
            stabilized: 0,
            serial_sum: 0,
            minutes_sum: 0,
            within_15: 0,
            within_30: 0,
        }
    }

    fn merge(&mut self, other: LabelAcc) {
        debug_assert_eq!(self.t, other.t);
        self.samples += other.samples;
        self.stabilized += other.stabilized;
        self.serial_sum += other.serial_sum;
        self.minutes_sum += other.minutes_sum;
        self.within_15 += other.within_15;
        self.within_30 += other.within_30;
    }

    fn finish(self) -> LabelStabilization {
        LabelStabilization {
            t: self.t,
            samples: self.samples,
            stabilized: self.stabilized,
            mean_serial: if self.stabilized == 0 {
                0.0
            } else {
                self.serial_sum as f64 / self.stabilized as f64
            },
            mean_days: if self.stabilized == 0 {
                0.0
            } else {
                self.minutes_sum as f64 / (24.0 * 60.0) / self.stabilized as f64
            },
            within_15d: self.within_15,
            within_30d: self.within_30,
        }
    }
}

/// Parallel §6.1 sweep over *S* partitions: per-partition `[u64; 5]`
/// counter blocks per r merge by addition.
fn rank_stabilization_columnar(
    table: &TrajectoryTable,
    s: &FreshDynamic,
    ctx: &AnalysisCtx,
) -> Vec<RankStabilization> {
    let ranges = par::partition_ranges(s.indices.len() as u64, ctx.workers);
    let parts = par::map_ranges_obs(&ranges, ctx.obs, "stabilization_rank", |_, range| {
        let mut out: Vec<RankStabilization> = (0..=5)
            .map(|r| RankStabilization {
                r,
                samples: 0,
                stabilized: 0,
                within_10d: 0,
                within_20d: 0,
                within_30d: 0,
            })
            .collect();
        for &rec in &s.indices[range.start as usize..range.end as usize] {
            let p = table.positives_of(rec);
            let dates = table.dates_of(rec);
            let t0 = dates[0];
            for stat in &mut out {
                stat.samples += 1;
                if let Some(i) = rank_stabilization_index(p, stat.r) {
                    stat.stabilized += 1;
                    let days = Duration::minutes(dates[i] - t0).as_days_f64();
                    if days <= 10.0 {
                        stat.within_10d += 1;
                    }
                    if days <= 20.0 {
                        stat.within_20d += 1;
                    }
                    if days <= 30.0 {
                        stat.within_30d += 1;
                    }
                }
            }
        }
        out
    });
    let mut iter = parts.into_iter();
    let mut out = iter.next().unwrap_or_else(|| {
        (0..=5)
            .map(|r| RankStabilization {
                r,
                samples: 0,
                stabilized: 0,
                within_10d: 0,
                within_20d: 0,
                within_30d: 0,
            })
            .collect()
    });
    for part in iter {
        for (a, b) in out.iter_mut().zip(part) {
            a.samples += b.samples;
            a.stabilized += b.stabilized;
            a.within_10d += b.within_10d;
            a.within_20d += b.within_20d;
            a.within_30d += b.within_30d;
        }
    }
    out
}

/// [`vt_aggregate::stabilization_index`] on the implied threshold-`t`
/// label sequence
/// of an AV-Rank column, without materializing the labels. Public so
/// the per-sample [`crate::index::SampleIndex`] answers "stabilized at
/// `t`?" with exactly the §6.2 sweep's definition.
pub fn label_stabilization_index(p: &[u32], t: u32) -> Option<usize> {
    if p.len() < 2 {
        return None;
    }
    let last = p[p.len() - 1] >= t;
    let mut start = p.len() - 1;
    while start > 0 && (p[start - 1] >= t) == last {
        start -= 1;
    }
    (p.len() - start >= 2).then_some(start)
}

/// All nine [`FIG9_THRESHOLDS`] stabilization verdicts of one AV-Rank
/// column in a single pass: bit `i` is set iff
/// `label_stabilization_index(p, FIG9_THRESHOLDS[i]).is_some()`.
///
/// Replaces nine separate backward mask walks with one: the index
/// exists iff the trailing constant-label run has length ≥ 2, and the
/// run reaches length 2 exactly when the last two labels agree — so
/// *existence* (unlike the index's position) is decided by the final
/// two AV-Ranks alone, for every threshold at once. The per-threshold
/// function stays the source of truth; a test pins the equivalence.
pub fn stabilization_mask(p: &[u32]) -> u16 {
    let n = p.len();
    if n < 2 {
        return 0;
    }
    let a = p[n - 2];
    let b = p[n - 1];
    let mut mask = 0u16;
    for (bit, &t) in FIG9_THRESHOLDS.iter().enumerate() {
        if (a >= t) == (b >= t) {
            mask |= 1 << bit;
        }
    }
    mask
}

/// Parallel §6.2 sweep: one worker per **threshold**, each walking *S*
/// serially in index order. Every accumulator is an integer sum (scan
/// serials; elapsed whole minutes), so the per-threshold totals are
/// independent of the partitioning *and* of any segment split — the
/// means are only formed when the partial is finished.
fn label_stabilization_columnar(
    table: &TrajectoryTable,
    s: &FreshDynamic,
    exclude_two_scans: bool,
    ctx: &AnalysisCtx,
) -> Vec<LabelAcc> {
    let kernel = if exclude_two_scans {
        "stabilization_label_multi"
    } else {
        "stabilization_label_all"
    };
    let ranges = par::partition_ranges(FIG9_THRESHOLDS.len() as u64, ctx.workers);
    let parts = par::map_ranges_obs(&ranges, ctx.obs, kernel, |_, range| {
        FIG9_THRESHOLDS[range.start as usize..range.end as usize]
            .iter()
            .map(|&t| {
                let mut acc = LabelAcc::new(t);
                for &rec in &s.indices {
                    if exclude_two_scans && table.report_count(rec) <= 2 {
                        continue;
                    }
                    acc.samples += 1;
                    let p = table.positives_of(rec);
                    if let Some(i) = label_stabilization_index(p, t) {
                        acc.stabilized += 1;
                        acc.serial_sum += (i + 1) as u64;
                        let dates = table.dates_of(rec);
                        let minutes = dates[i] - dates[0];
                        acc.minutes_sum += minutes as u64;
                        let days = Duration::minutes(minutes).as_days_f64();
                        if days <= 15.0 {
                            acc.within_15 += 1;
                        }
                        if days <= 30.0 {
                            acc.within_30 += 1;
                        }
                    }
                }
                acc
            })
            .collect::<Vec<_>>()
    });
    parts.into_iter().flatten().collect()
}

/// §6.1 result for one fluctuation range r.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankStabilization {
    /// The fluctuation range r.
    pub r: u32,
    /// Samples examined.
    pub samples: u64,
    /// Samples that reached stability.
    pub stabilized: u64,
    /// Of those, how many settled within 10 / 20 / 30 days of their
    /// first scan.
    pub within_10d: u64,
    /// See `within_10d`.
    pub within_20d: u64,
    /// See `within_10d`.
    pub within_30d: u64,
}

impl RankStabilization {
    /// Fraction of samples reaching stability.
    pub fn stabilized_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.stabilized as f64 / self.samples as f64
        }
    }

    /// Of stabilizing samples, the fraction settling within 30 days.
    pub fn within_30d_fraction(&self) -> f64 {
        if self.stabilized == 0 {
            0.0
        } else {
            self.within_30d as f64 / self.stabilized as f64
        }
    }
}

/// Earliest index `i` such that the suffix `p[i..]` (length ≥ 2) has
/// `max − min ≤ r`. Exposed for tests and the benches.
pub fn rank_stabilization_index(p: &[u32], r: u32) -> Option<usize> {
    if p.len() < 2 {
        return None;
    }
    // Walk backwards maintaining suffix min/max; record the smallest i
    // whose suffix satisfies the bound. Suffix envelopes only widen as
    // i decreases, so the last i where the bound holds going backwards
    // is the answer — once violated it stays violated.
    let mut min = u32::MAX;
    let mut max = 0u32;
    let mut best: Option<usize> = None;
    for i in (0..p.len()).rev() {
        min = min.min(p[i]);
        max = max.max(p[i]);
        if max - min <= r && p.len() - i >= 2 {
            best = Some(i);
        }
        if max - min > r {
            break;
        }
    }
    best
}

#[cfg(test)]
pub(crate) fn rank_stabilization_impl(
    records: &[SampleRecord],
    s: &FreshDynamic,
) -> Vec<RankStabilization> {
    let mut out: Vec<RankStabilization> = (0..=5)
        .map(|r| RankStabilization {
            r,
            samples: 0,
            stabilized: 0,
            within_10d: 0,
            within_20d: 0,
            within_30d: 0,
        })
        .collect();
    for rec in s.iter(records) {
        let p = rec.positives();
        let t0 = rec.reports[0].analysis_date;
        for stat in &mut out {
            stat.samples += 1;
            if let Some(i) = rank_stabilization_index(&p, stat.r) {
                stat.stabilized += 1;
                let days = (rec.reports[i].analysis_date - t0).as_days_f64();
                if days <= 10.0 {
                    stat.within_10d += 1;
                }
                if days <= 20.0 {
                    stat.within_20d += 1;
                }
                if days <= 30.0 {
                    stat.within_30d += 1;
                }
            }
        }
    }
    out
}

/// §6.2 result for one threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelStabilization {
    /// The threshold t.
    pub t: u32,
    /// Samples examined.
    pub samples: u64,
    /// Samples whose label sequence stabilized.
    pub stabilized: u64,
    /// Mean 1-based serial number of the stabilizing scan.
    pub mean_serial: f64,
    /// Mean days from first scan to the stabilizing scan.
    pub mean_days: f64,
    /// Of stabilizing samples: settled within 15 days.
    pub within_15d: u64,
    /// Of stabilizing samples: settled within 30 days.
    pub within_30d: u64,
}

impl LabelStabilization {
    /// Fraction of samples stabilizing (paper: 93.14%–98.04%).
    pub fn stabilized_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.stabilized as f64 / self.samples as f64
        }
    }

    /// Of samples, fraction stable within 30 days (paper: ~91–92%).
    pub fn within_30d_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.within_30d as f64 / self.samples as f64
        }
    }
}

/// The paper's Fig. 9 threshold set.
pub const FIG9_THRESHOLDS: [u32; 9] = [2, 5, 10, 15, 20, 25, 30, 35, 40];

/// Runs the §6.2 sweep. `exclude_two_scans` selects Fig. 9b's variant
/// (samples with only two scans trivially stabilize and dominate the
/// averages).
#[cfg(test)]
pub(crate) fn label_stabilization_impl(
    records: &[SampleRecord],
    s: &FreshDynamic,
    exclude_two_scans: bool,
) -> Vec<LabelStabilization> {
    FIG9_THRESHOLDS
        .iter()
        .map(|&t| {
            let agg = Threshold(t);
            let mut samples = 0u64;
            let mut stabilized = 0u64;
            let mut serial_sum = 0f64;
            let mut days_sum = 0f64;
            let mut within_15 = 0u64;
            let mut within_30 = 0u64;
            for rec in s.iter(records) {
                if exclude_two_scans && rec.report_count() <= 2 {
                    continue;
                }
                samples += 1;
                let seq = LabelSequence::from_reports(&rec.reports, &agg);
                if let Some(i) = stabilization_index(seq.labels()) {
                    stabilized += 1;
                    serial_sum += (i + 1) as f64;
                    let days =
                        (rec.reports[i].analysis_date - rec.reports[0].analysis_date).as_days_f64();
                    days_sum += days;
                    if days <= 15.0 {
                        within_15 += 1;
                    }
                    if days <= 30.0 {
                        within_30 += 1;
                    }
                }
            }
            LabelStabilization {
                t,
                samples,
                stabilized,
                mean_serial: if stabilized == 0 {
                    0.0
                } else {
                    serial_sum / stabilized as f64
                },
                mean_days: if stabilized == 0 {
                    0.0
                } else {
                    days_sum / stabilized as f64
                },
                within_15d: within_15,
                within_30d: within_30,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshdyn;
    use proptest::prelude::*;
    use vt_model::time::{Date, Duration, Timestamp};
    use vt_model::{
        EngineId, FileType, GroundTruth, ReportKind, SampleHash, SampleMeta, ScanReport, Verdict,
        VerdictVec,
    };

    #[test]
    fn rank_stabilization_index_cases() {
        // Settles at index 2 for r=0 (suffix 5,5,5).
        assert_eq!(rank_stabilization_index(&[1, 3, 5, 5, 5], 0), Some(2));
        // r=2 allows the suffix to start at index 1 (3,5,5,5 → spread 2).
        assert_eq!(rank_stabilization_index(&[1, 3, 5, 5, 5], 2), Some(1));
        // A final change means no r=0 stability.
        assert_eq!(rank_stabilization_index(&[2, 2, 3], 0), None);
        // …but r=1 covers the whole thing.
        assert_eq!(rank_stabilization_index(&[2, 2, 3], 1), Some(0));
        // Too short.
        assert_eq!(rank_stabilization_index(&[7], 0), None);
        // Two equal reports: stable from 0.
        assert_eq!(rank_stabilization_index(&[4, 4], 0), Some(0));
        // Two differing reports: never at r=0.
        assert_eq!(rank_stabilization_index(&[4, 6], 0), None);
    }

    proptest! {
        #[test]
        fn index_is_sound_and_monotone_in_r(
            p in proptest::collection::vec(0u32..20, 2..30)
        ) {
            let mut last_idx: Option<usize> = None;
            for r in 0..6u32 {
                let idx = rank_stabilization_index(&p, r);
                if let Some(i) = idx {
                    let suffix = &p[i..];
                    prop_assert!(suffix.len() >= 2);
                    let max = *suffix.iter().max().unwrap();
                    let min = *suffix.iter().min().unwrap();
                    prop_assert!(max - min <= r);
                    // Minimality: starting one earlier violates the bound
                    // (or is the start).
                    if i > 0 {
                        let wider = &p[i - 1..];
                        let wmax = *wider.iter().max().unwrap();
                        let wmin = *wider.iter().min().unwrap();
                        prop_assert!(wmax - wmin > r);
                    }
                }
                // Larger r stabilizes at the same or earlier index.
                if let (Some(prev), Some(cur)) = (last_idx, idx) {
                    prop_assert!(cur <= prev);
                }
                if last_idx.is_some() {
                    prop_assert!(idx.is_some(), "stability must persist as r grows");
                }
                last_idx = idx;
            }
        }
    }

    proptest! {
        #[test]
        fn mask_matches_per_threshold_walks(
            p in proptest::collection::vec(0u32..45, 0..12)
        ) {
            let mask = stabilization_mask(&p);
            for (bit, &t) in FIG9_THRESHOLDS.iter().enumerate() {
                prop_assert_eq!(
                    mask >> bit & 1 == 1,
                    label_stabilization_index(&p, t).is_some(),
                    "t={} p={:?}", t, &p
                );
            }
        }
    }

    fn record(i: u64, positives_seq: &[u32], gap_days: i64) -> SampleRecord {
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let first = window + Duration::days(5);
        let meta = SampleMeta {
            hash: SampleHash::from_ordinal(i),
            file_type: FileType::Win32Exe,
            origin: first,
            first_submission: first,
            truth: GroundTruth::Benign,
        };
        let reports = positives_seq
            .iter()
            .enumerate()
            .map(|(k, &p)| {
                let mut verdicts = VerdictVec::new(70);
                for e in 0..p {
                    verdicts.set(EngineId(e as u8), Verdict::Malicious);
                }
                ScanReport {
                    sample: meta.hash,
                    file_type: FileType::Pdf,
                    analysis_date: first + Duration::days(k as i64 * gap_days),
                    last_submission_date: first,
                    times_submitted: 1,
                    kind: ReportKind::Upload,
                    verdicts,
                }
            })
            .collect();
        SampleRecord::new(meta, reports)
    }

    #[test]
    fn rank_sweep_counts() {
        let records = vec![
            record(0, &[1, 5, 5, 5], 1), // stabilizes at r=0 (idx 1, day 1)
            record(1, &[1, 2], 1),       // only stabilizes at r>=1
        ];
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        let sweep = rank_stabilization_impl(&records, &s);
        assert_eq!(sweep[0].r, 0);
        assert_eq!(sweep[0].samples, 2);
        assert_eq!(sweep[0].stabilized, 1);
        assert_eq!(sweep[0].within_30d, 1);
        assert_eq!(sweep[1].stabilized, 2);
        assert!((sweep[1].stabilized_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_sweep_and_exclusion() {
        // Under t=2: sample 0's labels are B,M,M,M → stabilizes at
        // serial 2 (day 1). Sample 1: B,M → never (singleton suffix).
        let records = vec![record(0, &[1, 5, 5, 5], 1), record(1, &[1, 2], 1)];
        let window = Timestamp::from_date(Date::new(2021, 5, 1));
        let s = freshdyn::build(&records, window);
        let all = label_stabilization_impl(&records, &s, false);
        let t2 = all[0];
        assert_eq!(t2.t, 2);
        assert_eq!(t2.samples, 2);
        assert_eq!(t2.stabilized, 1);
        assert!((t2.mean_serial - 2.0).abs() < 1e-12);
        assert!((t2.mean_days - 1.0).abs() < 1e-12);

        let excl = label_stabilization_impl(&records, &s, true);
        assert_eq!(excl[0].samples, 1, "2-scan sample excluded");
    }
}
