//! Aligned text tables.

/// A simple column-aligned text table builder.
///
/// # Examples
///
/// ```
/// let mut t = vt_report::TextTable::new(vec!["engine", "flips"]);
/// t.row(vec!["Arcabit".into(), "25.78%".into()]);
/// let s = t.render();
/// assert!(s.contains("Arcabit"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded; longer
    /// rows extend the column set with empty headers.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header underline and two-space column
    /// separation. Numeric-looking cells are right-aligned.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        fn cell_of(row: &[String], c: usize) -> &str {
            row.get(c).map(String::as_str).unwrap_or("")
        }
        for (c, w) in widths.iter_mut().enumerate() {
            *w = self.headers.get(c).map(|h| h.chars().count()).unwrap_or(0);
            for row in &self.rows {
                *w = (*w).max(cell_of(row, c).chars().count());
            }
        }
        let numericish = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .all(|ch| ch.is_ascii_digit() || "+-.,%eE×x/@".contains(ch))
        };
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &dyn Fn(usize) -> String| {
            for (c, w) in widths.iter().enumerate() {
                let cell = cells(c);
                let pad = w.saturating_sub(cell.chars().count());
                if c > 0 {
                    out.push_str("  ");
                }
                if numericish(&cell) {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(&cell);
                } else {
                    out.push_str(&cell);
                    if c + 1 < widths.len() {
                        out.push_str(&" ".repeat(pad));
                    }
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &|c| {
            self.headers.get(c).cloned().unwrap_or_default()
        });
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, &|c| cell_of(row, c).to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "count"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Numeric column right-aligned: "1" ends at same col as "12345".
        let c1 = lines[2].rfind('1').unwrap();
        let c2 = lines[3].rfind('5').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        t.row(vec!["x".into(), "y".into(), "z".into(), "extra".into()]);
        let s = t.render();
        assert!(s.contains("extra"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }
}
