//! Minimal CSV emission (RFC 4180 quoting) — no external dependency.

/// A CSV document builder.
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    buf: String,
}

impl CsvWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record, quoting fields as needed.
    pub fn record<I, S>(&mut self, fields: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut first = true;
        for f in fields {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.buf.push_str(&escape(f.as_ref()));
        }
        self.buf.push_str("\r\n");
    }

    /// The document so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the writer, returning the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

fn escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields() {
        let mut w = CsvWriter::new();
        w.record(["a", "b", "c"]);
        assert_eq!(w.as_str(), "a,b,c\r\n");
    }

    #[test]
    fn quoting() {
        let mut w = CsvWriter::new();
        w.record(["has,comma", "has\"quote", "has\nnewline", "plain"]);
        assert_eq!(
            w.finish(),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\r\n"
        );
    }

    #[test]
    fn multiple_records() {
        let mut w = CsvWriter::new();
        w.record(["h1", "h2"]);
        w.record(["1", "2"]);
        assert_eq!(w.as_str().lines().count(), 2);
    }
}
