//! Rendering layer: text tables, ASCII figures, CSV, and the
//! per-experiment paper-vs-measured reports.
//!
//! Everything renders to plain strings so the harness works in any
//! terminal and output can be diffed / archived (`EXPERIMENTS.md` is
//! generated from [`experiments::render_full_report`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod experiments;
pub mod export;
pub mod figure;
pub mod table;

pub use csv::CsvWriter;
pub use export::export_csv;
pub use figure::{ascii_cdf, ascii_heatmap, box_row};
pub use table::TextTable;
