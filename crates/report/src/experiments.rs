//! Per-experiment renderers: every table and figure of the paper, with
//! the paper's reported values printed alongside the measured ones.
//!
//! [`render_full_report`] concatenates all experiments — that output is
//! what `examples/full_study.rs` prints and what `EXPERIMENTS.md`
//! archives.

use crate::figure::{ascii_cdf, ascii_heatmap, box_row};
use crate::table::TextTable;
use vt_dynamics::pipeline::CORRELATION_SCOPES;
use vt_dynamics::StudyResults;
use vt_engines::EngineFleet;
use vt_model::{EngineId, FileType};

fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

fn section(title: &str, body: String) -> String {
    format!("\n## {title}\n\n{body}")
}

/// Table 1 — API field-update semantics. The behaviour itself is
/// enforced and tested in `vt-sim::api`; this renders the rule table.
pub fn table1() -> String {
    let mut t = TextTable::new(vec![
        "API",
        "last_analysis_date",
        "last_submission_date",
        "times_submitted",
    ]);
    t.row(vec![
        "Upload".into(),
        "Update".into(),
        "Update".into(),
        "Update".into(),
    ]);
    t.row(vec![
        "Rescan".into(),
        "Update".into(),
        "Unchange".into(),
        "Unchange".into(),
    ]);
    t.row(vec![
        "Report".into(),
        "Unchange".into(),
        "Unchange".into(),
        "Unchange".into(),
    ]);
    section(
        "Table 1 — report-field update rules per API",
        format!(
            "{}\nEnforced by vt-sim::api (see its unit tests).\n",
            t.render()
        ),
    )
}

/// Table 2 — monthly report volumes and store accounting.
pub fn table2(r: &StudyResults) -> String {
    let mut t = TextTable::new(vec!["Month", "Reports", "Stored", "Compression"]);
    let mut total_reports = 0u64;
    let mut total_bytes = 0u64;
    for p in &r.partitions {
        if p.reports == 0 {
            continue;
        }
        let label = match p.month {
            Some(m) => format!("{m} Reports"),
            None => "Out-of-window".to_string(),
        };
        t.row(vec![
            label,
            p.reports.to_string(),
            format!("{:.3} MB", p.stored_bytes as f64 / 1e6),
            format!("{:.2}x", p.compression_ratio()),
        ]);
        total_reports += p.reports;
        total_bytes += p.stored_bytes;
    }
    t.row(vec![
        "Total".into(),
        total_reports.to_string(),
        format!("{:.3} MB", total_bytes as f64 / 1e6),
        String::new(),
    ]);
    section(
        "Table 2 — reports per month (store accounting)",
        format!(
            "{}\nPaper: 847,567,045 reports / 753.4 GB over 14 months; field-pruned &\n\
             compressed at 10.06x. Monthly volume profile (March 2022 peak, May 2021\n\
             trough) is reproduced by the traffic model; absolute counts scale with\n\
             the configured population.\n",
            t.render()
        ),
    )
}

/// Table 3 — file-type distribution.
pub fn table3(r: &StudyResults) -> String {
    let mut t = TextTable::new(vec![
        "File Type",
        "# Samples",
        "% Samples",
        "# Reports",
        "% Reports",
    ]);
    for (name, s, sp, rep, rp) in r.dataset.table3() {
        t.row(vec![
            name,
            s.to_string(),
            format!("{sp:.2}%"),
            rep.to_string(),
            format!("{rp:.2}%"),
        ]);
    }
    section(
        "Table 3 — file-type distribution",
        format!(
            "{}\nPaper: Win32 EXE 25.21% of samples / 29.09% of reports; NULL 9.60%;\n\
             Others 11.71% across 330 long-tail types (351 types total).\n",
            t.render()
        ),
    )
}

/// Fig. 1 — CDF of reports per sample.
pub fn fig1(r: &StudyResults) -> String {
    let hist = r.dataset.reports_per_sample_hist();
    let pts: Vec<(f64, f64)> = hist
        .cumulative()
        .into_iter()
        .map(|(v, f)| (v as f64, f))
        .collect();
    let plot = ascii_cdf(&[("reports/sample", pts)], 60, 12);
    let f = r.fig1;
    let body = format!(
        "{plot}\n\
         fraction with 1 report        paper 88.81%   measured {}\n\
         fraction with <6 reports      paper 99.10%   measured {}\n\
         fraction with <20 reports     paper 99.90%   measured {}\n\
         max reports for one sample    paper 64,168   measured {}\n\
         multi-report samples          paper 63,999,984 (11.21%)   measured {}\n",
        pct(f.singleton),
        pct(f.under_6),
        pct(f.under_20),
        f.max_reports,
        f.multi_report_samples,
    );
    section("Fig. 1 — CDF of reports per sample", body)
}

/// Obs. 1 + Fig. 2 — stable vs dynamic samples.
pub fn fig2(r: &StudyResults) -> String {
    let st = &r.stability;
    let stable_pts: Vec<(f64, f64)> = st
        .stable_report_hist
        .cumulative()
        .into_iter()
        .map(|(v, f)| (v as f64, f))
        .collect();
    let dynamic_pts: Vec<(f64, f64)> = st
        .dynamic_report_hist
        .cumulative()
        .into_iter()
        .map(|(v, f)| (v as f64, f))
        .collect();
    let plot = ascii_cdf(&[("stable", stable_pts), ("dynamic", dynamic_pts)], 60, 12);
    let body = format!(
        "{plot}\n\
         stable fraction of multi-report samples   paper 49.90%   measured {}\n\
         dynamic fraction                           paper 50.10%   measured {}\n\
         stable with exactly 2 reports              paper 67.09%   measured {}\n\
         dynamic with exactly 2 reports             paper 71.30%   measured {}\n",
        pct(st.stable_fraction()),
        pct(1.0 - st.stable_fraction()),
        pct(if st.stable == 0 {
            0.0
        } else {
            st.stable_report_hist.count(2) as f64 / st.stable as f64
        }),
        pct(if st.dynamic == 0 {
            0.0
        } else {
            st.dynamic_report_hist.count(2) as f64 / st.dynamic as f64
        }),
    );
    section("Obs. 1 / Fig. 2 — stable vs dynamic samples", body)
}

/// Obs. 2 + Figs. 3–4 — characterizing stable samples.
pub fn fig3_fig4(r: &StudyResults) -> String {
    let st = &r.stability;
    let pts: Vec<(f64, f64)> = st
        .stable_rank_hist
        .cumulative()
        .into_iter()
        .map(|(v, f)| (v as f64, f))
        .collect();
    let plot = ascii_cdf(&[("AV-Rank of stable samples", pts)], 60, 12);
    let mut boxes = String::new();
    let x_max = st
        .span_by_rank
        .iter()
        .flatten()
        .map(|b| b.whisker_hi)
        .fold(1.0, f64::max);
    for (rank, b) in st.span_by_rank.iter().enumerate() {
        if let Some(b) = b {
            let label = if rank == vt_dynamics::stability::StabilityAnalysis::RANK_CAP {
                format!("rank >= {rank} (days)")
            } else {
                format!("rank {rank} (days)")
            };
            boxes.push_str(&box_row(&label, b, x_max, 50));
        }
    }
    let body = format!(
        "{plot}\n\
         stable at AV-Rank 0            paper 66.36%   measured {}\n\
         stable at AV-Rank <= 5         paper >80%     measured {}\n\
         benign share excl. 2-scan      paper 81.7%    measured {}\n\
         rank-0 mean scans              paper 3.54     measured {:.2}\n\
         rank>0 mean scans              paper 2.92     measured {:.2}\n\
         span within 17 days            paper ~50%     measured {}\n\
         span within 350 days           paper >93%     measured {}\n\n\
         Fig. 4 — stable time span by AV-Rank:\n{boxes}\n\
         Paper: benign (rank 0) samples hold their state longest\n\
         (mean 20.34 d, median 14 d).\n",
        pct(st.stable_at_zero_fraction()),
        pct(st.stable_le5_fraction()),
        pct(st.stable_benign_fraction_excluding_two_scans()),
        st.rank0_mean_scans(),
        st.rank_pos_mean_scans(),
        pct(st.span_within_17d),
        pct(st.span_within_350d),
    );
    section("Obs. 2 / Figs. 3–4 — stable-sample characteristics", body)
}

/// Obs. 3 + Fig. 5 — δ/Δ distributions over *S*.
pub fn fig5(r: &StudyResults) -> String {
    let m = &r.metrics;
    let adj: Vec<(f64, f64)> = m
        .delta_adjacent_hist
        .cumulative()
        .into_iter()
        .map(|(v, f)| (v as f64, f))
        .collect();
    let ovl: Vec<(f64, f64)> = m
        .delta_overall_hist
        .cumulative()
        .into_iter()
        .map(|(v, f)| (v as f64, f))
        .collect();
    let plot = ascii_cdf(
        &[("delta (adjacent)", adj), ("Delta (overall)", ovl)],
        60,
        12,
    );
    let body = format!(
        "{plot}\n\
         |S| samples / reports     paper 32,051,433 / 109,142,027   measured {} / {}\n\
         adjacent pairs with d=0   paper 35.49%   measured {}\n\
         samples with Delta > 2    paper ~50%     measured {}\n\
         samples with Delta <= 11  paper 90%      measured {}\n",
        r.s_samples,
        r.s_reports,
        pct(m.delta_zero_fraction),
        pct(m.delta_over_2_fraction),
        pct(m.delta_le_11_fraction),
    );
    section(
        "Obs. 3 / Fig. 5 — adjacent (δ) and overall (Δ) AV-Rank differences",
        body,
    )
}

/// Obs. 4 + Fig. 6 — per-type δ/Δ boxes.
pub fn fig6(r: &StudyResults) -> String {
    let mut t = TextTable::new(vec![
        "File type",
        "δ mean",
        "δ median",
        "Δ mean",
        "Δ median",
        "n",
    ]);
    for tm in &r.metrics.per_type {
        if let (Some(adj), Some(ovl)) = (tm.delta_adjacent, tm.delta_overall) {
            t.row(vec![
                tm.file_type.name(),
                format!("{:.2}", adj.mean),
                format!("{:.1}", adj.median),
                format!("{:.2}", ovl.mean),
                format!("{:.1}", ovl.median),
                ovl.n.to_string(),
            ]);
        }
    }
    section(
        "Obs. 4 / Fig. 6 — per-file-type dynamics",
        format!(
            "{}\nPaper reference points: Win32 DLL has the highest adjacent-scan δ\n\
             (mean 3.25); JSON the lowest (0.29); overall Δ means range from 1.49\n\
             (JPEG) to 14.08 (Win32 EXE); EPUB/FPX/JPEG/ELF-shared/GZIP/PHP are the\n\
             quiet types; ZIP/JSON/TXT creep (small δ, larger Δ).\n",
            t.render()
        ),
    )
}

/// Obs. 5 + Fig. 7 — AV-Rank difference vs scan interval.
pub fn fig7(r: &StudyResults) -> String {
    let iv = &r.intervals;
    let mut boxes = String::new();
    let x_max = iv
        .by_day
        .iter()
        .flatten()
        .map(|b| b.whisker_hi)
        .fold(1.0, f64::max);
    for day in [1usize, 3, 7, 14, 30, 60, 120, 240, 360] {
        if let Some(b) = iv.by_day.get(day).and_then(|b| b.as_ref()) {
            boxes.push_str(&box_row(&format!("interval {day:>3} d"), b, x_max, 50));
        }
    }
    let corr = match iv.correlation {
        Some(c) => format!(
            "Spearman(interval, mean diff)  paper rho=0.9181, p=2.6083e-167\n\
             \u{20}                              measured rho={:.4}, p={:.4e} over {} day bins",
            c.rho, c.p_value, c.n
        ),
        None => "correlation undefined (insufficient data)".to_string(),
    };
    let body = format!(
        "{boxes}\n{corr}\n\
         pairs examined: {} (per-sample scans capped at {} — see module docs)\n\
         max interval observed: {} days (paper: 418)\n\
         window-growth check (§8.1): Delta grew from 1->3 month window for\n\
         paper 8.6% / measured {} of eligible samples\n",
        iv.pairs,
        vt_dynamics::intervals::MAX_SCANS_PER_SAMPLE,
        iv.max_interval_days,
        pct(r.window_growth),
    );
    section(
        "Obs. 5 / Fig. 7 — difference grows with scan interval",
        body,
    )
}

/// Obs. 6 + Fig. 8 — white/black/gray threshold sweeps.
pub fn fig8(r: &StudyResults) -> String {
    let render_sweep = |name: &str, sweep: &vt_dynamics::categorize::CategorySweep, paper: &str| {
        let mut t = TextTable::new(vec!["t", "white", "black", "gray"]);
        for sh in sweep.shares.iter().filter(|s| s.t % 3 == 1 || s.t == 50) {
            t.row(vec![
                sh.t.to_string(),
                pct(sh.white),
                pct(sh.black),
                pct(sh.gray),
            ]);
        }
        let max = sweep.gray_max().expect("nonempty sweep");
        let min = sweep.gray_min().expect("nonempty sweep");
        format!(
            "{name} ({} samples):\n{}\n\
             gray max: measured {} at t={} | gray min: measured {} at t={}\n\
             {paper}\n\n",
            sweep.samples,
            t.render(),
            pct(max.gray),
            max.t,
            pct(min.gray),
            min.t,
        )
    };
    let body = format!(
        "{}{}",
        render_sweep(
            "Fig. 8a — all of S",
            &r.categories_all,
            "paper: gray max 14.92% at t=24; min 3.82% at t=45; gray <10% for t in 1–11 and 28–50",
        ),
        render_sweep(
            "Fig. 8b — PE files only",
            &r.categories_pe,
            "paper: gray grows with t; max 16.41% at t=50; min 2.70% at t=3; <10% for t<=24",
        ),
    );
    section(
        "Obs. 6 / Fig. 8 — white/black/gray samples vs threshold",
        body,
    )
}

/// Obs. 7 — causes of label dynamics.
pub fn obs7(r: &StudyResults) -> String {
    let c = &r.causes;
    let body = format!(
        "per-engine flips in S: {} ({} up / {} down)\n\
         flips coinciding with an engine update   paper ~60%   measured {}\n\
         inactivity gaps returning the same label paper \"usually consistent\"   measured {}\n\
         (mechanisms: engine latency = 0→1 acquisitions; engine update =\n\
         update-quantized signature pushes; engine activity = timeouts/outages)\n",
        c.flips,
        c.flips_up,
        c.flips_down,
        pct(c.update_fraction()),
        pct(c.gap_consistency()),
    );
    section("Obs. 7 — inferred causes of label dynamics", body)
}

/// Obs. 8 — AV-Rank stabilization under fluctuation ranges.
pub fn obs8(r: &StudyResults) -> String {
    let paper = ["10.90%", "55.10%", "69.58%", "77.84%", "83.52%", "88.11%"];
    let mut t = TextTable::new(vec![
        "r",
        "stabilized (paper)",
        "stabilized (measured)",
        "of which within 30d",
    ]);
    for s in &r.rank_stabilization {
        t.row(vec![
            s.r.to_string(),
            paper[s.r as usize].to_string(),
            pct(s.stabilized_fraction()),
            pct(s.within_30d_fraction()),
        ]);
    }
    section(
        "Obs. 8 — AV-Rank stabilization (fluctuation ranges r = 0..5)",
        format!(
            "{}\nPaper: >90% of stabilizing samples settle within 30 days\n\
             (90.36%–95.68% across r).\n",
            t.render()
        ),
    )
}

/// Obs. 9 + Fig. 9 — file-label stabilization.
pub fn fig9(r: &StudyResults) -> String {
    let render = |name: &str, rows: &[vt_dynamics::stabilization::LabelStabilization]| {
        let mut t = TextTable::new(vec![
            "t",
            "stabilized",
            "mean serial",
            "mean days",
            "within 30d",
        ]);
        for l in rows {
            t.row(vec![
                l.t.to_string(),
                pct(l.stabilized_fraction()),
                format!("{:.1}", l.mean_serial),
                format!("{:.1}", l.mean_days),
                pct(l.within_30d_fraction()),
            ]);
        }
        format!("{name}:\n{}\n", t.render())
    };
    let body = format!(
        "{}{}\
         Paper (Fig. 9a, all samples): stabilize at the 2nd–3rd report on average,\n\
         9.4–10.6 days; (Fig. 9b, >2 scans): 10th–11th scan, 26–34 days — their\n\
         averages are dominated by heavily re-scanned monitoring samples.\n\
         93.14%–98.04% of labels eventually stabilize; 91.09%–92.31% within 30 days.\n\
         Known deviation: our simulated label histories cross thresholds less often\n\
         than the real feed, so measured serial/day means run lower (see EXPERIMENTS.md).\n",
        render("Fig. 9a — all of S", &r.label_stabilization_all),
        render(
            "Fig. 9b — excluding 2-scan samples",
            &r.label_stabilization_multi
        ),
    );
    section(
        "Obs. 9 / Fig. 9 — file-label stabilization under thresholds",
        body,
    )
}

/// Obs. 10 + Fig. 10 — per-engine flip behaviour.
pub fn fig10(r: &StudyResults, fleet: &EngineFleet) -> String {
    let f = &r.flips;
    // Heat map over a readable subset: 14 engines of interest × top-20
    // types, normalized to the max cell.
    let engines_of_interest = [
        "Arcabit",
        "F-Secure",
        "Lionic",
        "Microsoft",
        "F-Prot",
        "Cyren",
        "Rising",
        "CAT-QuickHeal",
        "Avast",
        "BitDefender",
        "Kaspersky",
        "ESET-NOD32",
        "Jiangmin",
        "AhnLab-V3",
    ];
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    let mut max_ratio: f64 = 1e-9;
    for name in engines_of_interest {
        let e = fleet.engine_by_name(name);
        let row: Vec<f64> = (0..20)
            .map(|idx| f.ratio(e, FileType::from_dense_index(idx)))
            .collect();
        for &v in &row {
            max_ratio = max_ratio.max(v);
        }
        cells.push(row);
        labels.push(name.to_string());
    }
    for row in &mut cells {
        for v in row.iter_mut() {
            *v /= max_ratio;
        }
    }
    let col_labels: Vec<String> = (0..20)
        .map(|i| format!("{i}={}", FileType::from_dense_index(i).name()))
        .collect();
    let map = ascii_heatmap(&labels, &col_labels, &cells);
    let ranked = f.ranked_engines();
    let top: Vec<String> = ranked
        .iter()
        .take(6)
        .map(|(e, ratio)| format!("{} {:.2}%", fleet.profile(*e).name, ratio * 100.0))
        .collect();
    let bottom: Vec<String> = ranked
        .iter()
        .rev()
        .take(4)
        .map(|(e, ratio)| format!("{} {:.2}%", fleet.profile(*e).name, ratio * 100.0))
        .collect();
    let body = format!(
        "flip ratio heat map (darkest = {:.2}%):\n{map}\n\
         total flips {} | up {} | down {} (paper 12.27 M up / 4.57 M down ≈ 2.7:1; measured ratio {:.2})\n\
         hazard flips: paper 9 of 16.8 M | measured {} of {}\n\
         most flip-prone: {}\n\
         most stable: {}\n\
         paper: flip-prone Arcabit / F-Secure / Lionic (and even Microsoft);\n\
         stable Jiangmin / AhnLab; Arcabit ELF 25.78% vs DEX 0.05%.\n",
        max_ratio * 100.0,
        f.flips,
        f.flips_up,
        f.flips_down,
        f.flips_up as f64 / f.flips_down.max(1) as f64,
        f.hazard_flips,
        f.flips,
        top.join(", "),
        bottom.join(", "),
    );
    section(
        "Obs. 10 / Fig. 10 — flip ratio per engine and file type",
        body,
    )
}

/// Obs. 11 + Figs. 11–12 + Tables 4–8 — engine correlation.
pub fn fig11_12(r: &StudyResults, fleet: &EngineFleet) -> String {
    let mut body = String::new();
    let name = |e: EngineId| fleet.profile(e).name;

    body.push_str("Fig. 11 — global strong correlations (rho > 0.8):\n");
    let g = &r.correlation_global;
    let mut t = TextTable::new(vec!["pair", "rho"]);
    for &(a, b, rho) in g.strong_pairs.iter().take(20) {
        t.row(vec![
            format!("{} — {}", name(a), name(b)),
            format!("{rho:.4}"),
        ]);
    }
    body.push_str(&t.render());
    body.push_str(&format!(
        "({} strong pairs over {} scan rows; showing top 20)\n\
         paper anchors: Paloalto–APEX 0.9933, Avast–AVG 0.9814,\n\
         Webroot–CrowdStrike 0.9754, BitDefender–FireEye 0.9520,\n\
         Emsisoft–FireEye 0.9189, Babable–F-Prot 0.9698, Avira–Cynet 0.9751\n\n",
        g.strong_pairs.len(),
        g.rows
    ));
    body.push_str("global engine groups (connected components):\n");
    for (i, group) in g.groups.iter().enumerate() {
        let names: Vec<&str> = group.iter().map(|&e| name(e)).collect();
        body.push_str(&format!("  group {}: {}\n", i + 1, names.join(", ")));
    }

    for ct in &r.correlation_per_type {
        let scope = ct.scope.expect("per-type scopes are typed");
        body.push_str(&format!(
            "\nscope {} ({} rows, {} strong pairs):\n",
            scope.name(),
            ct.rows,
            ct.strong_pairs.len()
        ));
        for (i, group) in ct.groups.iter().take(10).enumerate() {
            let names: Vec<&str> = group.iter().map(|&e| name(e)).collect();
            body.push_str(&format!("  group {}: {}\n", i + 1, names.join(", ")));
        }
        let top_pairs: Vec<String> = ct
            .strong_pairs
            .iter()
            .take(5)
            .map(|&(a, b, rho)| format!("{}–{} {:.3}", name(a), name(b), rho))
            .collect();
        if !top_pairs.is_empty() {
            body.push_str(&format!("  strongest pairs: {}\n", top_pairs.join("; ")));
        }
    }

    // The two per-type quirks the paper highlights.
    let exe = &r.correlation_per_type[0];
    debug_assert_eq!(CORRELATION_SCOPES[0], FileType::Win32Exe);
    let rho_of = |c: &vt_dynamics::correlation::CorrelationAnalysis, a: &str, b: &str| {
        c.rho_between(fleet.engine_by_name(a), fleet.engine_by_name(b))
    };
    body.push_str(&format!(
        "\nper-type quirks (Appendix 2):\n\
         Cyren–Fortinet   global {:.3} (weak) vs Win32 EXE {:.3} (paper: strong only on EXE)\n\
         Avira–Cynet      global {:.3} (strong) vs Win32 EXE {:.3} (paper: weak on EXE)\n",
        rho_of(g, "Cyren", "Fortinet"),
        rho_of(exe, "Cyren", "Fortinet"),
        rho_of(g, "Avira", "Cynet"),
        rho_of(exe, "Avira", "Cynet"),
    ));
    section(
        "Obs. 11 / Figs. 11–12, Tables 4–8 — engine correlation",
        body,
    )
}

/// The complete paper-vs-measured report.
pub fn render_full_report(r: &StudyResults, fleet: &EngineFleet) -> String {
    let mut out = String::from(
        "# Reproduction report — Re-measuring the Label Dynamics of Online\n\
         # Anti-Malware Engines from Millions of Samples (IMC '23)\n",
    );
    out.push_str(&table1());
    out.push_str(&table2(r));
    out.push_str(&table3(r));
    out.push_str(&fig1(r));
    out.push_str(&fig2(r));
    out.push_str(&fig3_fig4(r));
    out.push_str(&fig5(r));
    out.push_str(&fig6(r));
    out.push_str(&fig7(r));
    out.push_str(&fig8(r));
    out.push_str(&obs7(r));
    out.push_str(&obs8(r));
    out.push_str(&fig9(r));
    out.push_str(&fig10(r, fleet));
    out.push_str(&fig11_12(r, fleet));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_dynamics::Study;
    use vt_sim::SimConfig;

    #[test]
    fn full_report_renders_every_section() {
        let study = Study::generate(SimConfig::new(0xEE, 6_000));
        let results = study.run();
        let report = render_full_report(&results, study.sim().fleet());
        for needle in [
            "Table 1",
            "Table 2",
            "Table 3",
            "Fig. 1",
            "Fig. 2",
            "Figs. 3–4",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Fig. 8",
            "Obs. 7",
            "Obs. 8",
            "Fig. 9",
            "Fig. 10",
            "Figs. 11–12",
            "Paloalto",
            "Win32 EXE",
        ] {
            assert!(report.contains(needle), "missing section: {needle}");
        }
        // Sanity: the report is substantial.
        assert!(report.len() > 5_000, "report suspiciously short");
    }

    #[test]
    fn table1_is_static() {
        let t = table1();
        assert!(t.contains("Upload"));
        assert!(t.contains("Unchange"));
    }
}
