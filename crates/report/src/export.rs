//! CSV exports: the data series behind every figure, for external
//! plotting tools (matplotlib, gnuplot, a spreadsheet).
//!
//! [`export_csv`] returns `(file name, CSV contents)` pairs; the `vtld`
//! CLI writes them with `--csv-dir`.

use crate::csv::CsvWriter;
use vt_dynamics::StudyResults;
use vt_engines::EngineFleet;
use vt_model::{EngineId, FileType};

/// Renders every figure's data series as CSV documents.
pub fn export_csv(r: &StudyResults, fleet: &EngineFleet) -> Vec<(String, String)> {
    let mut out = Vec::new();

    // Fig. 1 — reports-per-sample CDF.
    let mut w = CsvWriter::new();
    w.record(["reports_per_sample", "cdf"]);
    for (v, f) in r.dataset.reports_per_sample_hist().cumulative() {
        w.record([v.to_string(), format!("{f:.6}")]);
    }
    out.push(("fig1_reports_per_sample.csv".into(), w.finish()));

    // Fig. 2 — stable/dynamic report-count CDFs.
    let mut w = CsvWriter::new();
    w.record(["class", "reports", "cdf"]);
    for (label, hist) in [
        ("stable", &r.stability.stable_report_hist),
        ("dynamic", &r.stability.dynamic_report_hist),
    ] {
        for (v, f) in hist.cumulative() {
            w.record([label.to_string(), v.to_string(), format!("{f:.6}")]);
        }
    }
    out.push(("fig2_stable_dynamic_cdf.csv".into(), w.finish()));

    // Fig. 3 — stable-sample AV-Rank CDF.
    let mut w = CsvWriter::new();
    w.record(["av_rank", "cdf"]);
    for (v, f) in r.stability.stable_rank_hist.cumulative() {
        w.record([v.to_string(), format!("{f:.6}")]);
    }
    out.push(("fig3_stable_avrank_cdf.csv".into(), w.finish()));

    // Fig. 4 — stable span boxes by rank.
    let mut w = CsvWriter::new();
    w.record([
        "rank",
        "n",
        "mean",
        "median",
        "q1",
        "q3",
        "whisker_lo",
        "whisker_hi",
    ]);
    for (rank, b) in r.stability.span_by_rank.iter().enumerate() {
        if let Some(b) = b {
            w.record([
                rank.to_string(),
                b.n.to_string(),
                format!("{:.4}", b.mean),
                format!("{:.4}", b.median),
                format!("{:.4}", b.q1),
                format!("{:.4}", b.q3),
                format!("{:.4}", b.whisker_lo),
                format!("{:.4}", b.whisker_hi),
            ]);
        }
    }
    out.push(("fig4_stable_span_by_rank.csv".into(), w.finish()));

    // Fig. 5 — δ/Δ CDFs.
    let mut w = CsvWriter::new();
    w.record(["metric", "value", "cdf"]);
    for (label, hist) in [
        ("delta_adjacent", &r.metrics.delta_adjacent_hist),
        ("delta_overall", &r.metrics.delta_overall_hist),
    ] {
        for (v, f) in hist.cumulative() {
            w.record([label.to_string(), v.to_string(), format!("{f:.6}")]);
        }
    }
    out.push(("fig5_delta_cdf.csv".into(), w.finish()));

    // Fig. 6 — per-type box stats.
    let mut w = CsvWriter::new();
    w.record(["file_type", "metric", "n", "mean", "median", "q1", "q3"]);
    for tm in &r.metrics.per_type {
        for (label, b) in [
            ("delta_adjacent", tm.delta_adjacent),
            ("delta_overall", tm.delta_overall),
        ] {
            if let Some(b) = b {
                w.record([
                    tm.file_type.name(),
                    label.to_string(),
                    b.n.to_string(),
                    format!("{:.4}", b.mean),
                    format!("{:.4}", b.median),
                    format!("{:.4}", b.q1),
                    format!("{:.4}", b.q3),
                ]);
            }
        }
    }
    out.push(("fig6_per_type.csv".into(), w.finish()));

    // Fig. 7 — day-bin statistics.
    let mut w = CsvWriter::new();
    w.record(["interval_days", "pairs", "mean_diff", "median_diff"]);
    for (day, b) in r.intervals.by_day.iter().enumerate() {
        if let Some(b) = b {
            w.record([
                day.to_string(),
                b.n.to_string(),
                format!("{:.4}", b.mean),
                format!("{:.4}", b.median),
            ]);
        }
    }
    out.push(("fig7_interval_bins.csv".into(), w.finish()));

    // Fig. 8 — threshold sweeps.
    for (name, sweep) in [
        ("fig8a_categories_all.csv", &r.categories_all),
        ("fig8b_categories_pe.csv", &r.categories_pe),
    ] {
        let mut w = CsvWriter::new();
        w.record(["t", "white", "black", "gray"]);
        for sh in &sweep.shares {
            w.record([
                sh.t.to_string(),
                format!("{:.6}", sh.white),
                format!("{:.6}", sh.black),
                format!("{:.6}", sh.gray),
            ]);
        }
        out.push((name.to_string(), w.finish()));
    }

    // Obs. 8 — rank stabilization sweep.
    let mut w = CsvWriter::new();
    w.record([
        "r",
        "samples",
        "stabilized",
        "within_10d",
        "within_20d",
        "within_30d",
    ]);
    for s in &r.rank_stabilization {
        w.record([
            s.r.to_string(),
            s.samples.to_string(),
            s.stabilized.to_string(),
            s.within_10d.to_string(),
            s.within_20d.to_string(),
            s.within_30d.to_string(),
        ]);
    }
    out.push(("obs8_rank_stabilization.csv".into(), w.finish()));

    // Fig. 9 — label stabilization.
    let mut w = CsvWriter::new();
    w.record([
        "variant",
        "t",
        "samples",
        "stabilized",
        "mean_serial",
        "mean_days",
    ]);
    for (variant, rows) in [
        ("all", &r.label_stabilization_all),
        ("gt2scans", &r.label_stabilization_multi),
    ] {
        for l in rows {
            w.record([
                variant.to_string(),
                l.t.to_string(),
                l.samples.to_string(),
                l.stabilized.to_string(),
                format!("{:.3}", l.mean_serial),
                format!("{:.3}", l.mean_days),
            ]);
        }
    }
    out.push(("fig9_label_stabilization.csv".into(), w.finish()));

    // Fig. 10 — the full engine × type flip-ratio matrix.
    let mut w = CsvWriter::new();
    let mut header = vec!["engine".to_string()];
    header.extend((0..20).map(|i| FileType::from_dense_index(i).name()));
    w.record(header);
    for e in 0..r.flips.engine_count {
        let id = EngineId(e as u8);
        let mut row = vec![fleet.profile(id).name.to_string()];
        for i in 0..20 {
            row.push(format!(
                "{:.6}",
                r.flips.ratio(id, FileType::from_dense_index(i))
            ));
        }
        w.record(row);
    }
    out.push(("fig10_flip_matrix.csv".into(), w.finish()));

    // Figs. 11–12 / Tables 4–8 — strong pairs per scope.
    let mut w = CsvWriter::new();
    w.record(["scope", "engine_a", "engine_b", "rho"]);
    let push_scope =
        |w: &mut CsvWriter, scope: &str, c: &vt_dynamics::correlation::CorrelationAnalysis| {
            for &(a, b, rho) in &c.strong_pairs {
                w.record([
                    scope.to_string(),
                    fleet.profile(a).name.to_string(),
                    fleet.profile(b).name.to_string(),
                    format!("{rho:.6}"),
                ]);
            }
        };
    push_scope(&mut w, "global", &r.correlation_global);
    for c in &r.correlation_per_type {
        let scope = c.scope.expect("typed scope").name();
        push_scope(&mut w, &scope, c);
    }
    out.push(("fig11_12_strong_pairs.csv".into(), w.finish()));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_dynamics::Study;
    use vt_sim::SimConfig;

    #[test]
    fn exports_cover_every_figure() {
        let study = Study::generate(SimConfig::new(0xC5, 5_000));
        let results = study.run();
        let files = export_csv(&results, study.sim().fleet());
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "fig1_reports_per_sample.csv",
            "fig2_stable_dynamic_cdf.csv",
            "fig3_stable_avrank_cdf.csv",
            "fig4_stable_span_by_rank.csv",
            "fig5_delta_cdf.csv",
            "fig6_per_type.csv",
            "fig7_interval_bins.csv",
            "fig8a_categories_all.csv",
            "fig8b_categories_pe.csv",
            "obs8_rank_stabilization.csv",
            "fig9_label_stabilization.csv",
            "fig10_flip_matrix.csv",
            "fig11_12_strong_pairs.csv",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        for (name, content) in &files {
            assert!(content.lines().count() >= 2, "{name} has no data rows");
            // Every row has the same number of commas as the header
            // (no quoting needed in these exports).
            let header_cols = content.lines().next().unwrap().split(',').count();
            for line in content.lines() {
                assert_eq!(line.split(',').count(), header_cols, "{name}: ragged row");
            }
        }
    }

    #[test]
    fn fig8_rows_cover_thresholds_1_to_50() {
        let study = Study::generate(SimConfig::new(0xC6, 3_000));
        let results = study.run();
        let files = export_csv(&results, study.sim().fleet());
        let fig8 = &files
            .iter()
            .find(|(n, _)| n == "fig8a_categories_all.csv")
            .unwrap()
            .1;
        assert_eq!(fig8.lines().count(), 51); // header + t=1..=50
    }
}
