//! ASCII figures: CDF line plots, box-plot rows, and heat maps.
//!
//! These are deliberately plain: every figure of the paper renders as
//! monospaced text so runs can be diffed, logged, and embedded in
//! `EXPERIMENTS.md`.

use vt_stats::BoxplotSummary;

/// Renders a CDF staircase as an ASCII plot.
///
/// `series` is a list of `(label, points)` where points are `(x, F(x))`
/// with `F` nondecreasing in `[0, 1]`. Each series draws with its own
/// glyph. The plot is `width × height` characters plus axes.
pub fn ascii_cdf(series: &[(&str, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let width = width.max(10);
    let height = height.max(4);
    let x_max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.0))
        .fold(1.0f64, f64::max);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Evaluate the staircase at each column. The row index is
        // computed per column, so indexing is the natural form here.
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            let x = x_max * col as f64 / (width - 1) as f64;
            // F(x) = the y of the last point with point.x <= x.
            let mut y = 0.0;
            for &(px, py) in pts.iter() {
                if px <= x {
                    y = py;
                } else {
                    break;
                }
            }
            let row = ((1.0 - y) * (height - 1) as f64).round() as usize;
            let row = row.min(height - 1);
            grid[row][col] = glyph;
        }
    }
    let mut out = String::new();
    for (r, line) in grid.iter().enumerate() {
        let y = 1.0 - r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:>5.2} |"));
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!("      +{}\n", "-".repeat(width)));
    out.push_str(&format!("       0{:>w$.1}\n", x_max, w = width - 1));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (label, _))| format!("{} {label}", GLYPHS[si % GLYPHS.len()]))
        .collect();
    out.push_str(&format!("       {}\n", legend.join("   ")));
    out
}

/// Renders one box-plot row: `min ⊢ [Q1 | median | Q3] ⊣ max` scaled to
/// `width` characters over `[0, x_max]`, with the mean marked `^`.
pub fn box_row(label: &str, b: &BoxplotSummary, x_max: f64, width: usize) -> String {
    let width = width.max(20);
    let x_max = x_max.max(1e-9);
    let col = |v: f64| (((v / x_max) * (width - 1) as f64).round() as usize).min(width - 1);
    let mut line = vec![' '; width];
    let (lo, q1, med, q3, hi) = (
        col(b.whisker_lo),
        col(b.q1),
        col(b.median),
        col(b.q3),
        col(b.whisker_hi),
    );
    for cell in line.iter_mut().take(q1).skip(lo) {
        *cell = '-';
    }
    for cell in line.iter_mut().take(hi + 1).skip(q3) {
        *cell = '-';
    }
    for cell in line.iter_mut().take(q3 + 1).skip(q1) {
        *cell = '=';
    }
    line[lo] = '|';
    line[hi] = '|';
    line[med] = 'M';
    let mean_col = col(b.mean);
    if line[mean_col] == ' ' || line[mean_col] == '-' || line[mean_col] == '=' {
        line[mean_col] = '^';
    }
    format!(
        "{label:<22} {}  (med {:.1}, mean {:.1}, n={})\n",
        line.iter().collect::<String>(),
        b.median,
        b.mean,
        b.n
    )
}

/// Renders a heat map with intensity glyphs (` .:-=+*#%@` from 0 to 1).
/// `cells[r][c]` ∈ [0, 1]; row labels on the left.
pub fn ascii_heatmap(row_labels: &[String], col_labels: &[String], cells: &[Vec<f64>]) -> String {
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    let label_w = row_labels
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(0);
    for (r, row) in cells.iter().enumerate() {
        let label = row_labels.get(r).map(String::as_str).unwrap_or("");
        out.push_str(&format!("{label:<label_w$} "));
        for &v in row {
            let idx = ((v.clamp(0.0, 1.0)) * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx]);
        }
        out.push('\n');
    }
    // Column legend: indices every 10 columns.
    out.push_str(&format!("{:<label_w$} ", ""));
    for c in 0..cells.first().map(Vec::len).unwrap_or(0) {
        out.push(if c % 10 == 0 { '|' } else { ' ' });
    }
    out.push('\n');
    if !col_labels.is_empty() {
        out.push_str(&format!(
            "{:<label_w$} cols: {}\n",
            "",
            col_labels.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_plot_has_expected_dimensions() {
        let pts = vec![(0.0, 0.2), (1.0, 0.6), (5.0, 1.0)];
        let plot = ascii_cdf(&[("demo", pts)], 40, 10);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 13); // 10 rows + axis + scale + legend
        assert!(plot.contains("demo"));
        assert!(plot.contains('*'));
    }

    #[test]
    fn cdf_plot_multi_series_glyphs() {
        let a = vec![(0.0, 0.5), (2.0, 1.0)];
        let b = vec![(0.0, 0.1), (4.0, 1.0)];
        let plot = ascii_cdf(&[("a", a), ("b", b)], 30, 8);
        assert!(plot.contains('*') && plot.contains('o'));
    }

    #[test]
    fn box_row_renders_markers() {
        let b = BoxplotSummary::from_unsorted(&[1.0, 2.0, 3.0, 4.0, 10.0]).unwrap();
        let row = box_row("demo", &b, 10.0, 40);
        assert!(row.contains('M'));
        assert!(row.contains('='));
        assert!(row.starts_with("demo"));
        assert!(row.contains("n=5"));
    }

    #[test]
    fn heatmap_shades() {
        let cells = vec![vec![0.0, 0.5, 1.0], vec![0.2, 0.8, 0.0]];
        let labels = vec!["r1".to_string(), "r2".to_string()];
        let map = ascii_heatmap(&labels, &["a".into()], &cells);
        assert!(map.contains('@'));
        assert!(map.contains("r1"));
        assert!(map.contains("cols: a"));
    }
}
