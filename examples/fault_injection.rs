//! Fault injection — how engine availability degrades label quality.
//!
//! The paper identifies *engine activity* (timeouts, absent engines) as
//! one of the three causes of label dynamics. This example sweeps the
//! fleet's fault-injection knobs (timeout and outage multipliers, per
//! the smoltcp tradition of `--drop-chance`-style options) and shows
//! what a degraded platform does to the measurements: stability
//! collapses, gray samples multiply, and thresholds that looked safe
//! stop being safe.
//!
//! Run with: `cargo run --release --example fault_injection -- [samples]`

use vt_label_dynamics::dynamics::{categorize, freshdyn, stability, Study};
use vt_label_dynamics::sim::SimConfig;

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120_000);

    println!("timeout×  outage×  stable%   |S|      gray@t=10  gray@t=40  undetected/scan");
    for (timeout_mult, outage_mult) in [
        (0.0, 0.0),  // perfect availability
        (1.0, 1.0),  // nominal
        (3.0, 1.0),  // flaky engines
        (1.0, 10.0), // outage storms
        (6.0, 10.0), // degraded platform
    ] {
        let mut config = SimConfig::new(0xFA_017, samples);
        config.fleet.timeout_mult = timeout_mult;
        config.fleet.outage_mult = outage_mult;
        let study = Study::generate(config);
        let records = study.records();

        let st = stability::analyze(records);
        let s = freshdyn::build(records, config.window_start());
        let sweep = categorize::sweep(records, &s, false);
        let gray = |t: u32| {
            sweep
                .shares
                .iter()
                .find(|sh| sh.t == t)
                .map(|sh| sh.gray * 100.0)
                .unwrap_or(0.0)
        };
        let mut inactive = 0u64;
        let mut scans = 0u64;
        for r in records {
            for rep in &r.reports {
                inactive += (rep.verdicts.engine_count() as u32 - rep.verdicts.active_count()) as u64;
                scans += 1;
            }
        }
        println!(
            "{timeout_mult:>7.1}  {outage_mult:>7.1}  {:>6.2}%  {:>6}  {:>8.2}%  {:>8.2}%  {:>10.2}",
            st.stable_fraction() * 100.0,
            s.len(),
            gray(10),
            gray(40),
            inactive as f64 / scans as f64,
        );
    }
    println!(
        "\nReading: with availability faults injected, samples that would be\n\
         stable flip between scans purely because different engine subsets\n\
         answered — the paper's 'engine activity' mechanism isolated from\n\
         signature churn. (timeout×0 keeps outages at 0 too only when both\n\
         knobs are zeroed; glitches remain at their nominal 1e-7.)"
    );
}
