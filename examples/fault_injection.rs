//! Fault injection — chaos-testing the collection path end to end.
//!
//! The paper's dataset exists because a collector polled VirusTotal's
//! feed every minute for 14 months; anything that long-lived sees
//! outages, duplicate deliveries, out-of-order batches, and damaged
//! bytes. This example drives the whole fault-tolerance stack:
//!
//! 1. A seeded [`FaultPlan`] wraps the simulator's time-ordered feed in
//!    a [`FaultyFeed`] that injects all four fault classes.
//! 2. The [`Collector`] ingests the chaotic feed — retrying outages,
//!    deduplicating redeliveries, re-sequencing late batches, and
//!    quarantining corrupted payloads — and prints its `IngestStats`.
//! 3. The collected store is persisted as `VTSTORE2`, a fraction of its
//!    blocks is bit-flipped, and `read_store_salvage` prints the
//!    `RecoveryReport` for what it clawed back.
//!
//! Run with: `cargo run --release --example fault_injection -- [samples]`

use vt_label_dynamics::prelude::*;
use vt_label_dynamics::store::crc32::crc32;
use vt_label_dynamics::store::read_store_salvage;

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);

    let config = SimConfig::new(0xFA_017, samples);
    let study = Study::generate(config);

    // --- 1. chaos plan over the minute-polled feed -------------------
    let plan = FaultPlan::clean(0xC0FFEE)
        .with_outages(0.03, 0.25)
        .with_duplicates(0.15)
        .with_reordering(0.25, 30)
        .with_corruption(0.02);
    let feed = FaultyFeed::from_sim(study.sim(), 0..samples, plan);
    println!(
        "feed: {} reports scheduled over minutes {}..={}",
        feed.scheduled_entries(),
        feed.first_minute().unwrap_or(0),
        feed.last_minute().unwrap_or(0)
    );
    println!(
        "      {} duplicated, {} delayed, {} corrupted by the plan\n",
        feed.duplicated_entries(),
        feed.delayed_entries(),
        feed.corrupted_entries()
    );

    // --- 2. fault-tolerant ingestion ---------------------------------
    let collector = Collector::new(CollectorConfig {
        max_retries: 5,
        reorder_horizon: 30,
    });
    let outcome = collector.run(feed);
    let s = outcome.stats;
    println!("IngestStats");
    println!("  polled minutes        {:>9}", s.polled_minutes);
    println!("  accepted              {:>9}", s.accepted);
    println!("  deduped redeliveries  {:>9}", s.deduped);
    println!("  re-sequenced (late)   {:>9}", s.reordered);
    println!("  quarantined           {:>9}", s.quarantined);
    println!("  poll retries          {:>9}", s.retries);
    println!("  gap minutes           {:>9}", s.gap_minutes);
    println!("  entries lost in gaps  {:>9}", s.lost_entries);
    println!("  max reorder depth     {:>9}", s.max_buffer_depth);
    println!("  emitted out of order  {:>9}", s.emitted_out_of_order);
    if let Some(q) = outcome.quarantine.first() {
        println!(
            "  first quarantined: minute {} — {:?}",
            q.delivery_minute, q.error
        );
    }

    // --- 3. persist, damage, salvage ---------------------------------
    let mut bytes = Vec::new();
    write_store(&outcome.store, &mut bytes).expect("serialize store");
    let (damaged, hit) = damage_blocks(bytes, 0.10, 0xBAD5EED);
    let (salvaged, report) = read_store_salvage(&mut damaged.as_slice()).expect("salvage");
    println!(
        "\nRecoveryReport ({} bytes on disk, {hit} blocks bit-flipped)",
        damaged.len()
    );
    println!("  blocks recovered      {:>9}", report.recovered_blocks());
    println!("  blocks skipped        {:>9}", report.skipped_blocks());
    println!("  reports recovered     {:>9}", report.recovered_reports());
    println!("  resyncs               {:>9}", report.resyncs);
    println!("  truncated             {:>9}", report.truncated);
    for p in &report.partitions {
        if p.skipped_blocks > 0 {
            println!(
                "    {:?}: kept {} blocks, lost {}",
                p.label, p.recovered_blocks, p.skipped_blocks
            );
        }
    }
    println!(
        "\nReading: duplicates and reordering are absorbed losslessly (the\n\
         dedup index and reorder buffer restore the clean stream), hard\n\
         outages and corrupted payloads are *accounted* rather than\n\
         silently dropped, and per-block CRCs turn file damage into a\n\
         bounded, reported loss: {} of {} reports survived the disk.",
        salvaged.report_count(),
        outcome.store.report_count(),
    );
}

/// Flips one payload byte in roughly `p` of the store's blocks, chosen
/// and placed by a seeded multiplicative hash — no RNG dependency.
fn damage_blocks(mut buf: Vec<u8>, p: f64, seed: u64) -> (Vec<u8>, u64) {
    const BLOCK_MARKER: u32 = 0xB10C_F00D;
    let marker = BLOCK_MARKER.to_le_bytes();
    let mut frames = Vec::new();
    for pos in 0..buf.len().saturating_sub(16) {
        if buf[pos..pos + 4] != marker {
            continue;
        }
        let byte_len = u32::from_le_bytes(buf[pos + 8..pos + 12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 12..pos + 16].try_into().unwrap());
        let payload = pos + 16;
        if byte_len > 0
            && payload + byte_len <= buf.len()
            && crc32(&buf[payload..payload + byte_len]) == crc
        {
            frames.push((payload, byte_len));
        }
    }
    let mut hit = 0u64;
    for (i, (payload, len)) in frames.into_iter().enumerate() {
        let mut h = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        if (h >> 11) as f64 / (1u64 << 53) as f64 >= p {
            continue;
        }
        let off = (h as usize) % len;
        buf[payload + off] ^= 0x40;
        hit += 1;
    }
    (buf, hit)
}
