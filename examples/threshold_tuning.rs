//! Threshold tuning for *your* dataset — the §5.4 workflow as a tool.
//!
//! The paper's core practical advice: before you pick a voting threshold
//! `t` for labeling, measure how many of *your* samples are "gray" under
//! each `t` (they would flip label depending on when you scanned).
//! This example plays the role of a research group with its own corpus:
//! it simulates a fresh feed, runs the white/black/gray sweep, and
//! recommends threshold ranges whose gray share stays under a budget.
//!
//! Run with:
//! `cargo run --release --example threshold_tuning -- [samples] [gray_budget_%]`

use vt_label_dynamics::dynamics::categorize::Categorize;
use vt_label_dynamics::dynamics::freshdyn;
use vt_label_dynamics::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let samples: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(300_000);
    let budget: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10.0) / 100.0;

    let study = Study::generate(SimConfig::new(0xD47A, samples));
    let records = study.records();
    let window_start = study.sim().config().window_start();
    let table = TrajectoryTable::build(records, window_start);
    let s = freshdyn::build(records, window_start);
    println!(
        "dataset: {} samples, {} in the fresh-dynamic set S\n",
        records.len(),
        s.len()
    );

    let ctx = AnalysisCtx::new(records, &table, &s, study.sim().fleet(), window_start);
    for (name, stage) in [
        ("all file types", Categorize::ALL),
        ("PE files only", Categorize::PE),
    ] {
        let sweep = stage.run(&ctx);
        println!("== {name} ({} samples) ==", sweep.samples);
        print!("gray share by threshold: ");
        for sh in sweep.shares.iter().step_by(7) {
            print!("t={}:{:.1}%  ", sh.t, sh.gray * 100.0);
        }
        println!();
        let good = sweep.thresholds_below(budget);
        let ranges = contiguous_ranges(&good);
        println!(
            "thresholds with gray < {:.0}%: {}",
            budget * 100.0,
            ranges
                .iter()
                .map(|(a, b)| if a == b {
                    format!("{a}")
                } else {
                    format!("{a}-{b}")
                })
                .collect::<Vec<_>>()
                .join(", ")
        );
        if let (Some(max), Some(min)) = (sweep.gray_max(), sweep.gray_min()) {
            println!(
                "worst threshold: t={} ({:.2}% gray); safest: t={} ({:.2}% gray)\n",
                max.t,
                max.gray * 100.0,
                min.t,
                min.gray * 100.0
            );
        }
    }

    println!(
        "paper recommendation (their feed): overall t in 1-11 or 28-50;\n\
         PE files t in 1-24. Always re-validate on your own corpus — that is\n\
         the paper's §8.1 point, and exactly what this tool does."
    );
}

/// Collapses a sorted list into contiguous (start, end) ranges.
fn contiguous_ranges(v: &[u32]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut iter = v.iter().copied();
    let Some(first) = iter.next() else {
        return out;
    };
    let (mut start, mut end) = (first, first);
    for x in iter {
        if x == end + 1 {
            end = x;
        } else {
            out.push((start, end));
            start = x;
            end = x;
        }
    }
    out.push((start, end));
    out
}
