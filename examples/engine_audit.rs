//! Engine audit — the §7 workflow as a tool: which engines flip, which
//! copy each other, and which subset makes a good trusted-voting panel.
//!
//! The paper's Obs. 10–11: engine stability varies wildly by file type,
//! and correlated engines should not be counted as independent votes.
//! This example ranks engines by flip ratio, lists the correlation
//! groups, and proposes a trusted panel of stable, mutually
//! *uncorrelated* engines (one per correlation group).
//!
//! Run with: `cargo run --release --example engine_audit -- [samples]`

use vt_label_dynamics::dynamics::correlation::Correlation;
use vt_label_dynamics::dynamics::flips::Flips;
use vt_label_dynamics::dynamics::freshdyn;
use vt_label_dynamics::prelude::*;

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300_000);

    let study = Study::generate(SimConfig::new(0xA0D1, samples));
    let records = study.records();
    let fleet = study.sim().fleet();
    let window_start = study.sim().config().window_start();
    let s = freshdyn::build(records, window_start);
    let table = TrajectoryTable::build(records, window_start);

    let ctx = AnalysisCtx::new(records, &table, &s, fleet, window_start);
    let flip = Flips.run(&ctx);
    let (corr, _) = Correlation {
        scopes: &[],
        max_rows: 400_000,
    }
    .run(&ctx);

    println!("== engine stability (flip ratio, lower is steadier) ==");
    let ranked = flip.ranked_engines();
    println!("most flip-prone:");
    for (e, ratio) in ranked.iter().take(8) {
        println!("  {:<18} {:.2}%", fleet.profile(*e).name, ratio * 100.0);
    }
    println!("steadiest:");
    for (e, ratio) in ranked.iter().rev().take(5) {
        println!("  {:<18} {:.3}%", fleet.profile(*e).name, ratio * 100.0);
    }

    println!("\n== correlation groups (rho > 0.8 — votes that are not independent) ==");
    for (i, group) in corr.groups.iter().enumerate() {
        let names: Vec<&str> = group.iter().map(|&e| fleet.profile(e).name).collect();
        println!("  group {}: {}", i + 1, names.join(", "));
    }

    // Build a trusted panel: walk engines from steadiest upward, skip
    // any engine sharing a correlation group with one already picked.
    let group_of = |e: EngineId| corr.groups.iter().position(|g| g.contains(&e));
    let mut panel: Vec<EngineId> = Vec::new();
    let mut used_groups: Vec<usize> = Vec::new();
    for (e, _) in ranked.iter().rev() {
        match group_of(*e) {
            Some(g) if used_groups.contains(&g) => continue,
            Some(g) => used_groups.push(g),
            None => {}
        }
        panel.push(*e);
        if panel.len() == 10 {
            break;
        }
    }
    println!("\n== proposed trusted panel (stable + mutually uncorrelated) ==");
    for e in &panel {
        println!(
            "  {:<18} flip ratio {:.3}%",
            fleet.profile(*e).name,
            flip.engine_ratio(*e) * 100.0
        );
    }
    println!(
        "\nUse it with vt_aggregate::TrustedSubset {{ engines, min_hits }} — e.g.\n\
         min_hits = 2 of these {} engines. The paper's point: a '2 of 70' rule\n\
         silently degrades to '1 vendor decision' when the two votes come from\n\
         the same OEM family.",
        panel.len()
    );
}
