//! Stabilization monitor — the §6 question as a tool: *how long should
//! you wait before trusting a sample's label?*
//!
//! The paper's Obs. 8–9: most samples' AV-Ranks settle into a narrow
//! band, and the vast majority of threshold labels stop changing within
//! 30 days. This example measures, for a user-chosen threshold and
//! fluctuation tolerance, the waiting time needed to reach a target
//! confidence that the label is final.
//!
//! Run with:
//! `cargo run --release --example stabilization_monitor -- [samples] [threshold]`

use vt_label_dynamics::aggregate::{stabilization_index, LabelSequence};
use vt_label_dynamics::dynamics::stabilization::Stabilization;
use vt_label_dynamics::dynamics::{freshdyn, MonitorCriteria, MonitorEvent, SampleMonitor};
use vt_label_dynamics::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let samples: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(300_000);
    let threshold: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let study = Study::generate(SimConfig::new(0x57AB, samples));
    let records = study.records();
    let window_start = study.sim().config().window_start();
    let s = freshdyn::build(records, window_start);
    let table = TrajectoryTable::build(records, window_start);
    println!("fresh dynamic set S: {} samples\n", s.len());

    // §6.1 — AV-Rank stabilization under fluctuation ranges.
    let ctx = AnalysisCtx::new(records, &table, &s, study.sim().fleet(), window_start);
    println!("== AV-Rank stabilization (fluctuation tolerance r) ==");
    for stat in Stabilization.run(&ctx).rank {
        println!(
            "  r={}  {:.1}% of samples settle; of those, {:.1}% within 30 days",
            stat.r,
            stat.stabilized_fraction() * 100.0,
            stat.within_30d_fraction() * 100.0
        );
    }

    // §6.2 — distribution of days-to-stability for the chosen threshold.
    let agg = Threshold(threshold);
    let mut days_to_stable: Vec<f64> = Vec::new();
    let mut never = 0u64;
    for rec in s.iter(records) {
        let seq = LabelSequence::from_reports(&rec.reports, &agg);
        match stabilization_index(seq.labels()) {
            Some(i) => {
                let days =
                    (rec.reports[i].analysis_date - rec.reports[0].analysis_date).as_days_f64();
                days_to_stable.push(days);
            }
            None => never += 1,
        }
    }
    days_to_stable.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let total = days_to_stable.len() as u64 + never;
    println!("\n== label stabilization at threshold t={threshold} ==");
    println!(
        "  {:.2}% of S stabilized in-window; {:.2}% still changing at window end",
        days_to_stable.len() as f64 / total as f64 * 100.0,
        never as f64 / total as f64 * 100.0
    );
    let ecdf = vt_label_dynamics::stats::Ecdf::new(days_to_stable);
    for q in [0.50, 0.75, 0.90, 0.95, 0.99] {
        if let Some(days) = ecdf.quantile(q) {
            println!(
                "  {:>4.0}% of stabilizing labels final within {days:.1} days",
                q * 100.0
            );
        }
    }
    for wait in [0.0, 7.0, 15.0, 30.0, 60.0] {
        println!(
            "  re-scan policy 'wait {wait:>2.0} d': label already final for {:.1}% of stabilizing samples",
            ecdf.fraction_le(wait) * 100.0
        );
    }
    println!(
        "\npaper: 93.14%–98.04% of labels eventually stabilize;\n\
         91.09%–92.31% of file labels are stable after 30 days —\n\
         re-scan after ~30 days before freezing dataset labels."
    );

    // Live demo of the §8.1 notification feature the paper proposes:
    // stream one busy sample's scans through a SampleMonitor.
    let busy = s
        .iter(records)
        .filter(|r| r.report_count() >= 6)
        .max_by_key(|r| r.delta_max().unwrap_or(0));
    if let Some(rec) = busy {
        println!(
            "\n== streaming notifications for sample {} ({} scans) ==",
            rec.meta.hash,
            rec.report_count()
        );
        let mut monitor = SampleMonitor::new(MonitorCriteria {
            fluctuation_range: 3,
            min_observations: 3,
            min_quiet: vt_label_dynamics::model::time::Duration::days(10),
            swing_threshold: 8,
            swing_interval: vt_label_dynamics::model::time::Duration::days(3),
        });
        for rep in &rec.reports {
            for event in monitor.observe(rep.analysis_date, rep.positives()) {
                match event {
                    MonitorEvent::Stabilized {
                        at,
                        since,
                        rank_min,
                        rank_max,
                    } => println!(
                        "  {at}  STABILIZED in [{rank_min}, {rank_max}] (quiet since {since})"
                    ),
                    MonitorEvent::Destabilized {
                        at,
                        rank,
                        previous_min,
                        previous_max,
                    } => println!(
                        "  {at}  DESTABILIZED: rank {rank} left [{previous_min}, {previous_max}] — re-evaluate"
                    ),
                    MonitorEvent::Swing {
                        at,
                        delta,
                        interval,
                    } => println!(
                        "  {at}  SWING: AV-Rank moved {delta} in {:.1} days",
                        interval.as_days_f64()
                    ),
                }
            }
        }
        println!(
            "  final state: {}",
            if monitor.is_stable() {
                "stable"
            } else {
                "still moving"
            }
        );
    }
}
