//! Full paper reproduction: regenerates every table and figure of the
//! paper with paper-vs-measured annotations.
//!
//! Run with:
//! `cargo run --release --example full_study -- [samples] [seed]`
//!
//! Defaults to 1,000,000 samples (~30 s on a laptop). The output of this
//! binary is what `EXPERIMENTS.md` archives.

use vt_label_dynamics::prelude::*;
use vt_label_dynamics::report::experiments::render_full_report;

fn main() {
    let mut args = std::env::args().skip(1);
    let samples: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let seed: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(0x7e57_5eed);

    eprintln!("simulating {samples} samples (seed {seed:#x})...");
    let t0 = std::time::Instant::now();
    let study = Study::generate(SimConfig::new(seed, samples));
    eprintln!("generated in {:.1?}; running analyses...", t0.elapsed());

    let t1 = std::time::Instant::now();
    let results = study.run();
    eprintln!("analyzed in {:.1?}", t1.elapsed());

    println!("{}", render_full_report(&results, study.sim().fleet()));
}
