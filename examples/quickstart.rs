//! Quickstart: simulate a small VirusTotal feed, inspect one sample's
//! label trajectory, and aggregate labels with a threshold.
//!
//! Run with: `cargo run --release --example quickstart`

use vt_label_dynamics::prelude::*;

fn main() {
    // A seeded study: same seed → same dataset, bit for bit.
    let config = SimConfig::new(42, 20_000);
    let study = Study::generate(config);

    println!("generated {} samples", study.records().len());
    let reports: usize = study.records().iter().map(|r| r.reports.len()).sum();
    println!("           {reports} scan reports over 14 simulated months\n");

    // Find an interesting sample: multiple scans, changing AV-Rank.
    let sample = study
        .records()
        .iter()
        .filter(|r| r.report_count() >= 4)
        .max_by_key(|r| r.delta_max().unwrap_or(0))
        .expect("some sample has 4+ reports");

    println!(
        "sample {} ({}), {} scans:",
        sample.meta.hash,
        sample.meta.file_type,
        sample.report_count()
    );
    let agg = Threshold(10);
    for report in &sample.reports {
        println!(
            "  {}  AV-Rank {:>2}/{}  active {:>2}  label(t=10): {:?}",
            report.analysis_date,
            report.positives(),
            report.verdicts.engine_count(),
            report.verdicts.active_count(),
            agg.label_report(report),
        );
    }

    // Run the full measurement pipeline and print the headline numbers.
    let results = study.run();
    println!("\nheadline statistics (paper values in parentheses):");
    println!(
        "  singleton samples      {:.2}%  (88.81%)",
        results.fig1.singleton * 100.0
    );
    println!(
        "  stable samples         {:.2}%  (49.90%)",
        results.stability.stable_fraction() * 100.0
    );
    println!(
        "  stable at AV-Rank 0    {:.2}%  (66.36%)",
        results.stability.stable_at_zero_fraction() * 100.0
    );
    println!(
        "  hazard flips           {} of {} flips  (9 of 16.8M)",
        results.flips.hazard_flips, results.flips.flips
    );
    if let Some(c) = results.intervals.correlation {
        println!(
            "  interval correlation   rho={:.3}  (0.9181; noise-limited at this",
            c.rho
        );
        println!("                          demo scale — run full_study for the real series)");
    }

    // The same study, folded zero-copy: the sealed store's blocks
    // stream into a reusable decode arena and the columnar table is
    // built straight from it — no per-report structs on the way. This
    // is the path `vtld serve` folds every segment through, and it is
    // bit-identical to the batch run above.
    let store = study.build_store();
    let mut arena = DecodeArena::new();
    let mut inc = IncrementalStudy::new(study.sim().fleet(), study.sim().config().window_start());
    let folded = inc.fold_store(&store, &mut arena, Obs::noop());
    let streamed = inc.results(store.partition_stats(), Obs::noop());
    assert_eq!(streamed.flips.flips, results.flips.flips);
    println!("\nzero-copy fold over the sealed store: {folded} samples, identical results");

    println!("\nnext: cargo run --release --example full_study");
}
