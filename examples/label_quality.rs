//! Label quality — how much better can first-scan labels get?
//!
//! The paper's §3.1/§8.1 observation: most studies label a sample from a
//! single early scan with an unweighted threshold, yet engines are
//! neither equally reliable nor independent. This example quantifies
//! the gap:
//!
//! 1. Build *reference labels* from each sample's **final stabilized**
//!    report (threshold t=10 on the last scan — the §6 insight that
//!    labels settle given time).
//! 2. Fit a [`ReliabilityModel`] (per-engine log-odds weights) on a
//!    training split.
//! 3. Compare aggregators on *first-scan* verdicts of a held-out split:
//!    fixed thresholds, percentage voting, and the learned weights.
//!
//! Run with: `cargo run --release --example label_quality -- [samples]`

use vt_label_dynamics::aggregate::{Label, PercentageThreshold, ReliabilityModel};
use vt_label_dynamics::prelude::*;

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);

    let study = Study::generate(SimConfig::new(0x1ABE1, samples));
    let engine_count = study.sim().fleet().engine_count();

    // Multi-scan samples whose history spans at least 20 days: their
    // final report is a credible stabilized reference (§6: >90% of
    // labels settle within 30 days).
    let reference = Threshold(10);
    let eligible: Vec<_> = study
        .records()
        .iter()
        .filter(|r| r.report_count() >= 2 && r.time_span().as_days() >= 20)
        .collect();
    println!(
        "{} samples with >=2 scans spanning >=20 days (of {})",
        eligible.len(),
        study.records().len()
    );

    // Split: even indices train, odd indices evaluate.
    let train = eligible.iter().step_by(2);
    let eval: Vec<_> = eligible.iter().skip(1).step_by(2).collect();

    let model = ReliabilityModel::fit(
        engine_count,
        train.map(|r| {
            let last = r.reports.last().expect("multi-scan");
            (&last.verdicts, reference.label_report(last))
        }),
    );

    // Most / least informative engines under the learned weights.
    println!("\nmost informative engines (learned log-odds):");
    for (e, w) in model.ranked_by_weight().into_iter().take(5) {
        let name = study
            .sim()
            .fleet()
            .profile(vt_label_dynamics::model::EngineId(e as u8))
            .name;
        println!(
            "  {:<18} weight {:+.2}  (TPR {:.2}, FPR {:.4})",
            name,
            w,
            model.engine_tpr(e),
            model.engine_fpr(e)
        );
    }

    // Evaluate first-scan agreement with the final reference label.
    let evaluate = |agg: &dyn Aggregator| {
        let mut agree = 0u64;
        let mut fp = 0u64;
        let mut fnn = 0u64;
        for r in &eval {
            let first = &r.reports[0];
            let last = r.reports.last().expect("multi-scan");
            let truth = reference.label_report(last);
            let predicted = agg.label_report(first);
            if predicted == truth {
                agree += 1;
            } else if predicted == Label::Malicious {
                fp += 1;
            } else {
                fnn += 1;
            }
        }
        let n = eval.len().max(1) as f64;
        (agree as f64 / n, fp as f64 / n, fnn as f64 / n)
    };

    println!("\nfirst-scan label vs final stabilized label (held-out split):");
    println!(
        "{:<22} {:>9} {:>9} {:>9}",
        "aggregator", "agree", "early-FP", "early-FN"
    );
    for agg in [
        &Threshold(1) as &dyn Aggregator,
        &Threshold(2),
        &Threshold(10),
        &Threshold(25),
        &PercentageThreshold(0.5),
        &model,
    ] {
        let (acc, fp, fnn) = evaluate(agg);
        println!(
            "{:<22} {:>8.2}% {:>8.2}% {:>8.2}%",
            agg.name(),
            acc * 100.0,
            fp * 100.0,
            fnn * 100.0
        );
    }
    println!(
        "\nReading: 'early-FN' is the §5.5 latency effect (engines that have\n\
         not yet acquired signatures at first scan); low thresholds trade it\n\
         for 'early-FP' (unretracted false positives). The learned weights\n\
         lean on engines whose first-scan verdicts historically survive."
    );
}
