//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Vendored because this workspace builds hermetically (no registry
//! access). Implements the surface the workspace uses: `SeedableRng::
//! seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and the
//! `SmallRng` / `StdRng` types. Both RNGs are xoshiro256++ seeded by
//! splitmix64 — the same construction real `rand 0.8` uses for
//! `SmallRng` on 64-bit targets — so streams are deterministic,
//! well-distributed, and cheap. (`StdRng` is ChaCha12 upstream; here it
//! shares the xoshiro engine. Nothing in this workspace needs
//! cryptographic randomness — determinism under a fixed seed is the
//! property every caller relies on, and that is preserved.)

#![forbid(unsafe_code)]

/// Low-level uniform-word generation.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds an RNG from OS entropy. The stand-in derives entropy from
    /// the system clock — adequate for the simulation defaults; every
    /// reproducible path seeds explicitly.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED_CAFE);
        Self::seed_from_u64(nanos)
    }
}

/// Values samplable uniformly from the full domain (the `Standard`
/// distribution of the real crate).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision — the real
    /// crate's `Standard` convention.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded draw: unbiased enough for
                // simulation spans (all ≪ 2^64), branch-free.
                let hi = (((rng.next_u64() as u128) * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (((rng.next_u64() as u128) * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level draws, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from its full-domain distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by both RNG types.
#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The RNG types (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// Small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "standard" RNG. Same engine as [`SmallRng`] in this
    /// stand-in, but seeded into a distinct stream so the two types do
    /// not accidentally correlate under equal seeds.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256PlusPlus::seed_from_u64(
                seed ^ 0xA5A5_A5A5_5A5A_5A5A,
            ))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Convenience re-exports (`rand::prelude`).
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
            let f = rng.gen_range(1e-12..1.0 - 1e-12);
            assert!(f > 0.0 && f < 1.0);
            let w = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&w));
        }
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut small = SmallRng::seed_from_u64(1);
        let mut std = StdRng::seed_from_u64(1);
        assert_ne!(small.next_u64(), std.next_u64());
    }
}
