//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in a hermetic environment with no registry
//! access, so the external crates it names are vendored as minimal,
//! API-compatible stand-ins under `third_party/`. Only the surface the
//! workspace actually uses is implemented.
//!
//! `parking_lot`'s locks differ from `std::sync` in that they do not
//! poison: a panic while holding the guard leaves the lock usable. We
//! reproduce that by unwrapping poison errors into their inner guard.

#![forbid(unsafe_code)]

use std::sync;

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Exclusive mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
