//! Offline stand-in for the `crossbeam` crate.
//!
//! Vendored because this workspace builds hermetically (no registry
//! access). Only `crossbeam::thread::scope` is used, and `std` has
//! grown an equivalent (`std::thread::scope`, Rust 1.63) — so the
//! stand-in is a thin adapter reproducing crossbeam's API shape:
//! `scope` returns a `Result`, and spawn closures receive the scope.

#![forbid(unsafe_code)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::thread as std_thread;

    /// Error from a scope or join: the payload of a panicked thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle; spawned threads may borrow from `'env`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the
        /// closure receives the scope so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment can
    /// be spawned; all spawned threads are joined before return.
    ///
    /// Unlike crossbeam, a panic in a thread that was never joined
    /// propagates out of `scope` instead of surfacing in the returned
    /// `Result` — callers here join every handle, so the difference is
    /// unobservable in this workspace.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .expect("scope completes");
        assert_eq!(total, 10);
    }
}
