//! Offline stand-in for the `criterion` crate.
//!
//! Vendored because this workspace builds hermetically (no registry
//! access). The stand-in keeps every bench target compiling and
//! runnable: each `b.iter(..)` closure is executed a few times and the
//! mean wall-clock time printed. There is no statistical analysis,
//! outlier detection, or HTML report — `cargo bench` becomes a smoke
//! run that still exercises every benched code path end to end.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per bench closure (few — this is a smoke run).
const ITERS: u32 = 3;

/// Throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Passed to bench closures; times the hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `f` [`ITERS`] times and records the mean duration.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }
}

fn report(group: Option<&str>, name: &str, throughput: Option<Throughput>, nanos: f64) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if nanos > 0.0 => {
            format!("  ({:.1} Kelem/s)", n as f64 / nanos * 1e6)
        }
        Some(Throughput::Bytes(n)) if nanos > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / nanos * 1e9 / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("bench: {full:<60} {:>12.0} ns/iter{rate}", nanos);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sample-size hint; accepted and ignored (smoke run).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benches a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(
            Some(&self.name),
            &id.to_string(),
            self.throughput,
            b.nanos_per_iter,
        );
        self
    }

    /// Benches a closure that receives `input` under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(
            Some(&self.name),
            &id.to_string(),
            self.throughput,
            b.nanos_per_iter,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The bench driver handed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benches a standalone closure.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(None, &id.to_string(), None, b.nanos_per_iter);
        self
    }
}

/// Declares a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs_every_target() {
        benches();
    }
}
