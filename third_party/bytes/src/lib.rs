//! Offline stand-in for the `bytes` crate.
//!
//! Vendored because this workspace builds hermetically (no registry
//! access). Implements the subset the workspace uses: cheaply cloneable
//! [`Bytes`] views (`Arc<[u8]>` + range), a growable [`BytesMut`], and
//! big-endian cursor reads/writes through [`Buf`] / [`BufMut`]. All
//! integer accessors use network byte order, matching the real crate.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte source. Getters consume from the front and
/// panic on underflow, like the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// True if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads `n` bytes from the front into a fresh `Vec`.
    fn take_front(&mut self, n: usize) -> Vec<u8>;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let b = self.take_front(2);
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let b = self.take_front(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let b = self.take_front(8);
        u64::from_be_bytes(b.try_into().expect("8 bytes"))
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let b = self.take_front(16);
        u128::from_be_bytes(b.try_into().expect("16 bytes"))
    }
}

/// Write sink for bytes. All integer putters are big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable, cheaply cloneable view into shared bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty view.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Copies a slice into a freshly allocated `Bytes`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self::from(src.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice out of bounds: {lo}..{hi} of {len}"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "..[{} bytes]", self.len())?;
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> Vec<u8> {
        assert!(
            n <= self.len(),
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let out = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        out
    }

    fn get_u8(&mut self) -> u8 {
        self.array::<1>()[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.array())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.array())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.array())
    }

    fn get_u128(&mut self) -> u128 {
        u128::from_be_bytes(self.array())
    }
}

impl Bytes {
    /// Reads `N` bytes off the front without allocating (the hot decode
    /// paths issue millions of fixed-width reads; a `Vec` per read is a
    /// heap allocation per byte).
    fn array<const N: usize>(&mut self) -> [u8; N] {
        assert!(
            N <= self.len(),
            "buffer underflow: need {N}, have {}",
            self.len()
        );
        let arr: [u8; N] = self.data[self.start..self.start + N]
            .try_into()
            .expect("slice is N bytes");
        self.start += N;
        arr
    }
}

/// Reads `N` bytes off the front of a slice cursor without allocating.
fn slice_array<const N: usize>(buf: &mut &[u8]) -> [u8; N] {
    assert!(
        N <= buf.len(),
        "buffer underflow: need {N}, have {}",
        buf.len()
    );
    let (head, tail) = buf.split_at(N);
    *buf = tail;
    head.try_into().expect("split_at returns N bytes")
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> Vec<u8> {
        assert!(
            n <= self.len(),
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let (head, tail) = self.split_at(n);
        *self = tail;
        head.to_vec()
    }

    fn get_u8(&mut self) -> u8 {
        slice_array::<1>(self)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(slice_array(self))
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(slice_array(self))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(slice_array(self))
    }

    fn get_u128(&mut self) -> u128 {
        u128::from_be_bytes(slice_array(self))
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u128(12345678901234567890);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 1 + 4 + 16);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u128(), 12345678901234567890);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let sub = mid.slice(1..);
        assert_eq!(&sub[..], &[3, 4]);
        assert_eq!(b.len(), 6, "parent view unchanged");
    }

    #[test]
    fn slice_buf_reads() {
        let data = [1u8, 0, 2];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.get_u16(), 0x0100);
        assert_eq!(cur.remaining(), 1);
        assert_eq!(cur.get_u8(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32();
    }
}
