//! Offline stand-in for the `proptest` crate.
//!
//! Vendored because this workspace builds hermetically (no registry
//! access). Implements the subset the workspace's property tests use:
//! the `proptest!` macro, `prop_assert*` / `prop_assume` macros, range
//! and tuple strategies, `any::<T>()`, and `collection::vec`.
//!
//! Semantics: each test body runs for a fixed number of seeded cases
//! (`PROPTEST_CASES`, default 64). Case seeds derive deterministically
//! from the test's module path and case index, so failures reproduce
//! run-to-run. There is no shrinking — a failure reports the case seed
//! and the assertion message instead of a minimized input.

#![forbid(unsafe_code)]

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!`; another case
    /// is drawn in its place.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// The deterministic per-case RNG.
pub mod test_runner {
    /// splitmix64-based RNG; seeded from the test identity and case
    /// index so every run draws the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case_index` of the test named `test_id`.
        pub fn deterministic(test_id: &str, case_index: u64) -> Self {
            // FNV-1a over the test identity, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: case_count() as u32,
            }
        }
    }

    /// Number of cases per property (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128)
                        .wrapping_mul(span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = ((rng.next_u64() as u128)
                        .wrapping_mul(span) >> 64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    /// Always produces a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` — full-domain generation.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        // Finite, spanning signs and magnitudes; avoids NaN/inf, which
        // no property in this workspace intends to receive from any().
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mag = (rng.unit_f64() * 600.0) - 300.0; // exponent range ~1e±130
            let sign_mantissa = rng.unit_f64() * 2.0 - 1.0;
            sign_mantissa * 10f64.powf(mag / 2.3)
        }
    }

    /// Marker strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length distribution for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: u64,
        /// Exclusive.
        hi: u64,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n as u64,
                hi: n as u64 + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start as u64,
                hi: r.end as u64,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start() as u64,
                hi: *r.end() as u64 + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module imports (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn` inside becomes a `#[test]` that
/// runs its body over seeded generated inputs. An optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` overrides the
/// per-test case count.
#[macro_export]
macro_rules! proptest {
    (@cases ($wanted:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let wanted: u64 = $wanted;
                let mut passed: u64 = 0;
                let mut drawn: u64 = 0;
                while passed < wanted {
                    drawn += 1;
                    assert!(
                        drawn <= wanted.saturating_mul(64),
                        "proptest: too many rejected cases ({} draws for {} cases)",
                        drawn,
                        wanted,
                    );
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        drawn,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed (test {}, case seed index {}): {}",
                                stringify!($name),
                                drawn,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases (($config).cases as u64) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases ($crate::test_runner::case_count()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                )
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&($left), &($right)) {
            (l, r) => {
                $crate::prop_assert!(l == r, $($fmt)*)
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                )
            }
        }
    };
}

/// Rejects the current case (draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u64..10, y in -5i64..=5, f in 0.25..0.75f64) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<bool>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn tuples_and_assume(pair in (0u8..4, 0u8..4)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
            prop_assert_eq!(pair.0 as u16 + pair.1 as u16, (pair.0 + pair.1) as u16);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
