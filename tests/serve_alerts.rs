//! Streaming drift-alert correctness for `vtld serve` (ISSUE 10).
//!
//! The contract under test (DESIGN.md §15):
//!
//! * **Bit-identical alert streams** — the `alerts` response tail (the
//!   bytes after the epoch, which is publish-cadence dependent) is
//!   identical at every shard × worker combination: detectors are
//!   slot-local folds over the WAL order, so parallelism can never
//!   show in what fired or how it rendered.
//! * **Recommend equals the offline sweep** — the served `recommend`
//!   threshold and per-threshold stabilized counts equal the batch
//!   §6.2 sweep (`label_stabilization_all`) computed directly over the
//!   same feed, and the engine subset is exactly the engines whose
//!   flip ratio is at or below the fleet-wide ratio.
//! * **Subscribe pushes each published alert at most once**, and every
//!   pushed alert is one the pull verb also serves.
//! * **Typed errors** for malformed alerting requests, and the
//!   `serve/alerts_*` counters surfaced in `status`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use vt_label_dynamics::dynamics::stabilization::FIG9_THRESHOLDS;
use vt_label_dynamics::model::EngineId;
use vt_label_dynamics::obs::json;
use vt_label_dynamics::prelude::*;

const SAMPLES: u64 = 1_000; // one ingest chunk: daemon feed == reference feed
const SEED: u64 = 0xD1CE;
const SEGMENT_REPORTS: u64 = 300;

/// Detector thresholds tuned low enough that this small feed actually
/// fires all the alert machinery (defaults are tuned for the full-size
/// stream).
fn sensitive_alerts() -> AlertConfig {
    AlertConfig {
        burst_min: 2,
        crossover_min_scans: 20,
        crossover_min_gap_permille: 1,
        regression_min_stabilized: 2,
        regression_factor_permille: 1_000,
        ..AlertConfig::default()
    }
}

fn serve_config(shards: usize, workers: usize) -> ServeConfig {
    let mut config = ServeConfig::new(SAMPLES, SEED);
    config.segment_reports = SEGMENT_REPORTS;
    config.workers = workers;
    config.shards = shards;
    config.alert_config = sensitive_alerts();
    config
}

/// The batch study over the identical feed (same simulator, same
/// default fault plan as [`ServeConfig::new`]), computed once per test
/// process.
fn reference_results() -> &'static (StudyResults, Vec<String>) {
    static REF: OnceLock<(StudyResults, Vec<String>)> = OnceLock::new();
    REF.get_or_init(|| {
        let sim = VirusTotalSim::new(SimConfig::new(SEED, SAMPLES));
        let plan = FaultPlan::clean(SEED)
            .with_duplicates(0.01)
            .with_reordering(0.05, 30);
        let feed = FaultyFeed::from_sim(&sim, 0..SAMPLES, plan);
        let outcome = Collector::default().run(feed);
        let records = records_from_store(&outcome.store);
        let window_start = sim.config().window_start();
        let results = analyze_records(&records, Vec::new(), sim.fleet(), window_start);
        let engine_names = (0..results.flips.engine_count)
            .map(|i| sim.fleet().profile(EngineId::new(i)).name.to_string())
            .collect();
        (results, engine_names)
    })
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn query_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
    stream
        .write_all(format!("{req}\n").as_bytes())
        .expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

fn query(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> json::Value {
    let raw = query_raw(stream, reader, req);
    json::parse(&raw).unwrap_or_else(|e| panic!("unparseable response to {req}: {e}: {raw}"))
}

fn await_ingest_done(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let (mut stream, mut reader) = connect(addr);
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let v = query(&mut stream, &mut reader, "{\"cmd\":\"status\"}");
        if v.get("ingest_done").and_then(|d| d.as_bool()) == Some(true) {
            return (stream, reader);
        }
        assert!(Instant::now() < deadline, "ingestion never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn u64s(v: &json::Value, key: &str) -> u64 {
    v.get(key)
        .and_then(|x| x.as_u64())
        .unwrap_or_else(|| panic!("missing u64 member {key}: {v:?}"))
}

/// The `(slot, seq, detector, ordinal)` identity of one rendered alert.
fn alert_key(v: &json::Value) -> (u64, u64, String, u64) {
    (
        u64s(v, "seq"),
        u64s(v, "slot"),
        v.get("detector")
            .and_then(|d| d.as_str())
            .expect("detector member")
            .to_string(),
        u64s(v, "ordinal"),
    )
}

/// The epoch-independent tail of an `alerts` response: everything from
/// `"count"` on. The epoch before it depends on publish cadence (how
/// many seals the merger coalesced), which legitimately varies with
/// shard/worker counts; the alert content must not.
fn alerts_tail(raw: &str) -> &str {
    let at = raw.find("\"count\"").expect("count member");
    &raw[at..]
}

/// The full shards 1/2/4 × workers 1/2/8 grid must serve the same
/// `alerts` bytes after the epoch prefix — the tentpole acceptance.
#[test]
fn alert_streams_bit_identical_across_shard_worker_grid() {
    let mut reference: Option<String> = None;
    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2, 8] {
            let server = Server::start(serve_config(shards, workers)).expect("bind");
            let (mut stream, mut reader) = await_ingest_done(server.addr());
            let raw = query_raw(&mut stream, &mut reader, "{\"cmd\":\"alerts\",\"since\":0}");
            let v = json::parse(&raw).expect("parseable alerts response");
            let count = u64s(&v, "count");
            assert!(
                count > 0,
                "the tuned detectors must fire on this feed or the test is vacuous"
            );
            assert_eq!(
                count,
                v.get("alerts")
                    .and_then(|a| a.as_array())
                    .expect("alerts array")
                    .len() as u64
            );
            let tail = alerts_tail(&raw).to_string();
            match &reference {
                None => reference = Some(tail),
                Some(want) => assert_eq!(
                    want, &tail,
                    "alert stream diverged at shards={shards}, workers={workers}"
                ),
            }
            server.shutdown();
            server.wait();
        }
    }
}

/// The served recommendation must equal the offline §6.2 sweep and the
/// §7.1 flip matrix, computed directly over the same feed.
#[test]
fn recommend_matches_the_offline_stabilization_sweep() {
    let (results, engine_names) = reference_results();
    let server = Server::start(serve_config(2, 2)).expect("bind");
    let (mut stream, mut reader) = await_ingest_done(server.addr());
    let v = query(&mut stream, &mut reader, "{\"cmd\":\"recommend\"}");
    let rec = v.get("recommend").expect("recommend member");

    // Per-threshold stabilized counts equal Fig. 9a bit for bit.
    let sweep = rec
        .get("thresholds")
        .and_then(|t| t.as_array())
        .expect("thresholds array");
    assert_eq!(sweep.len(), FIG9_THRESHOLDS.len());
    for (row, offline) in sweep.iter().zip(&results.label_stabilization_all) {
        assert_eq!(u64s(row, "threshold"), u64::from(offline.t));
        assert_eq!(
            u64s(row, "stabilized"),
            offline.stabilized,
            "threshold {} disagrees with the offline sweep",
            offline.t
        );
    }
    assert_eq!(u64s(rec, "in_s"), results.s_samples);

    // The recommended threshold is the sweep's argmax (ties to the
    // lower threshold).
    let best = results
        .label_stabilization_all
        .iter()
        .max_by(|a, b| a.stabilized.cmp(&b.stabilized).then(b.t.cmp(&a.t)))
        .expect("nonempty sweep");
    assert_eq!(u64s(rec, "threshold"), u64::from(best.t));
    assert_eq!(u64s(rec, "stabilized"), best.stabilized);

    // The engine subset: exactly the engines at or below the
    // fleet-wide flip ratio, in (ratio, name) order.
    let totals: Vec<(usize, u64, u64)> = (0..results.flips.engine_count)
        .map(|i| {
            let row = &results.flips.matrix[i];
            (
                i,
                row.iter().map(|c| c.flips).sum(),
                row.iter().map(|c| c.opportunities).sum(),
            )
        })
        .collect();
    let fleet_flips: u64 = totals.iter().map(|&(_, f, _)| f).sum();
    let fleet_opps: u64 = totals.iter().map(|&(_, _, o)| o).sum();
    let mut expect: Vec<&(usize, u64, u64)> = totals
        .iter()
        .filter(|&&(_, f, o)| {
            o > 0 && (f as u128) * (fleet_opps as u128) <= (fleet_flips as u128) * (o as u128)
        })
        .collect();
    expect.sort_by(|&&(i, fi, oi), &&(j, fj, oj)| {
        ((fi as u128) * (oj as u128))
            .cmp(&((fj as u128) * (oi as u128)))
            .then_with(|| engine_names[i].cmp(&engine_names[j]))
    });
    let served = rec
        .get("engines")
        .and_then(|e| e.as_array())
        .expect("engines array");
    assert!(
        !served.is_empty(),
        "some engine is always at or below average"
    );
    assert_eq!(served.len(), expect.len());
    for (row, &&(i, f, o)) in served.iter().zip(&expect) {
        assert_eq!(
            row.get("name").and_then(|n| n.as_str()),
            Some(&*engine_names[i])
        );
        assert_eq!(u64s(row, "flips"), f);
        assert_eq!(u64s(row, "opportunities"), o);
    }

    server.shutdown();
    server.wait();
}

/// `subscribe` switches the connection into a push stream: every line
/// is one published alert, no alert is pushed twice, and each one is
/// an alert the pull verb also serves.
#[test]
fn subscribe_pushes_published_alerts_at_most_once() {
    let server = Server::start(serve_config(2, 2)).expect("bind");

    // Subscribe immediately, before ingest finishes, so pushes race
    // real publishes.
    let (mut sub_stream, mut sub_reader) = connect(server.addr());
    let ack = query(&mut sub_stream, &mut sub_reader, "{\"cmd\":\"subscribe\"}");
    assert_eq!(ack.get("subscribed").and_then(|s| s.as_bool()), Some(true));

    // Drive ingest to completion on a second connection and take the
    // authoritative pull answer.
    let (mut stream, mut reader) = await_ingest_done(server.addr());
    let finale = query(&mut stream, &mut reader, "{\"cmd\":\"alerts\",\"since\":0}");
    let all: Vec<_> = finale
        .get("alerts")
        .and_then(|a| a.as_array())
        .expect("alerts array")
        .iter()
        .map(alert_key)
        .collect();
    assert!(!all.is_empty());

    // Give the push loop a beat to flush the final epoch, then shut
    // down; the subscriber connection drains to EOF.
    std::thread::sleep(Duration::from_millis(200));
    server.shutdown();
    server.wait();

    let mut pushed = Vec::new();
    let mut line = String::new();
    while {
        line.clear();
        sub_reader.read_line(&mut line).expect("read push") > 0
    } {
        let v = json::parse(line.trim_end())
            .unwrap_or_else(|e| panic!("unparseable push: {e}: {line}"));
        assert!(u64s(&v, "epoch") > 0, "pushes carry the publish epoch");
        pushed.push(alert_key(v.get("alert").expect("alert member")));
    }
    assert!(!pushed.is_empty(), "subscriber saw none of the alerts");
    let mut dedup = pushed.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), pushed.len(), "an alert was pushed twice");
    for key in &pushed {
        assert!(
            all.contains(key),
            "pushed alert {key:?} is unknown to the pull verb"
        );
    }
}

/// Typed answers for the alerting verbs' edges: bad `since`, a future
/// `since`, and the `serve/alerts_*` counters in `status`.
#[test]
fn alert_verbs_answer_edges_with_typed_documents() {
    let server = Server::start(serve_config(1, 1)).expect("bind");
    let (mut stream, mut reader) = await_ingest_done(server.addr());

    let v = query(
        &mut stream,
        &mut reader,
        "{\"cmd\":\"alerts\",\"since\":\"x\"}",
    );
    assert_eq!(
        v.get("error").and_then(|e| e.as_str()),
        Some("member 'since' must be a non-negative integer")
    );

    // A `since` beyond every published epoch: an empty page, not an
    // error.
    let v = query(
        &mut stream,
        &mut reader,
        "{\"cmd\":\"alerts\",\"since\":99999999}",
    );
    assert_eq!(u64s(&v, "count"), 0);
    assert!(v.get("error").is_none());

    // `since` defaults to 0 (the whole retained stream).
    let defaulted = query_raw(&mut stream, &mut reader, "{\"cmd\":\"alerts\"}");
    let explicit = query_raw(&mut stream, &mut reader, "{\"cmd\":\"alerts\",\"since\":0}");
    assert_eq!(alerts_tail(&defaulted), alerts_tail(&explicit));

    // The status document carries the alert counters, and what the
    // pull verb serves agrees with the fired total (this feed stays
    // far under the retention ring).
    let status = query(&mut stream, &mut reader, "{\"cmd\":\"status\"}");
    let fired = u64s(&status, "alerts_fired");
    for key in [
        "alerts_stabilized",
        "alerts_destabilized",
        "alerts_swings",
        "alerts_emitted",
        "alerts_dropped",
    ] {
        u64s(&status, key);
    }
    let v = json::parse(&explicit).expect("parseable alerts response");
    assert_eq!(u64s(&v, "count"), fired);

    // With detectors disabled the verbs stay well-formed but empty.
    server.shutdown();
    server.wait();
    let mut off = serve_config(1, 1);
    off.alerts = false;
    let server = Server::start(off).expect("bind");
    let (mut stream, mut reader) = await_ingest_done(server.addr());
    let v = query(&mut stream, &mut reader, "{\"cmd\":\"alerts\",\"since\":0}");
    assert_eq!(u64s(&v, "count"), 0);
    let status = query(&mut stream, &mut reader, "{\"cmd\":\"status\"}");
    assert_eq!(u64s(&status, "alerts_fired"), 0);
    server.shutdown();
    server.wait();
}
