//! Degenerate inputs and fault injection: the pipeline must stay
//! well-defined at the edges (empty studies, tiny studies, hostile
//! fleet configurations), and the collection path must survive a
//! misbehaving feed and a damaged store file.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vt_label_dynamics::dynamics::{
    analyze_records, records_from_store, Analysis, Collector, CollectorConfig, Study,
};
use vt_label_dynamics::sim::fault::{FaultPlan, FaultyFeed};
use vt_label_dynamics::sim::SimConfig;
use vt_label_dynamics::store::crc32::crc32;
use vt_label_dynamics::store::{read_store, read_store_salvage, write_store, write_store_v1};

#[test]
fn empty_study_runs() {
    let study = Study::generate(SimConfig::new(1, 0));
    let r = study.run();
    assert_eq!(r.dataset.total_samples(), 0);
    assert_eq!(r.s_samples, 0);
    assert_eq!(r.flips.flips, 0);
    assert!(r.intervals.correlation.is_none());
    for sh in &r.categories_all.shares {
        // Empty sweep degrades to all-white (0/0 conventions), still a
        // partition.
        assert!((sh.white + sh.black + sh.gray - 1.0).abs() < 1e-9);
    }
    for s in &r.rank_stabilization {
        assert_eq!(s.samples, 0);
        assert_eq!(s.stabilized_fraction(), 0.0);
    }
}

#[test]
fn single_sample_study_runs() {
    let study = Study::generate(SimConfig::new(2, 1));
    let r = study.run();
    assert_eq!(r.dataset.total_samples(), 1);
    // One sample is almost surely single-report; S may be empty — all
    // downstream analyses must still hold their invariants.
    assert!(r.s_samples <= 1);
    assert_eq!(r.flips.flips, r.flips.flips_up + r.flips.flips_down);
}

#[test]
fn zero_glitch_rate_means_zero_hazard_flips() {
    let mut config = SimConfig::new(3, 30_000);
    config.fleet.glitch_rate = 0.0;
    let study = Study::generate(config);
    let r = study.run();
    assert!(r.flips.flips > 0, "study too small to observe flips");
    assert_eq!(
        r.flips.hazard_flips, 0,
        "hazard flips are structurally impossible without glitches"
    );
}

#[test]
fn saturated_timeouts_degrade_activity() {
    // Timeout probability saturated (the per-sample rate caps at 0.5 and
    // epoch/load factors modulate below it): activity must fall far
    // below nominal, and the pipeline must keep its invariants.
    let activity = |timeout_mult: f64| {
        let mut config = SimConfig::new(4, 2_000);
        config.fleet.timeout_mult = timeout_mult;
        let study = Study::generate(config);
        let mut active = 0u64;
        let mut slots = 0u64;
        for rec in study.records() {
            for rep in &rec.reports {
                active += rep.verdicts.active_count() as u64;
                slots += rep.verdicts.engine_count() as u64;
            }
        }
        let r = study.run();
        assert_eq!(
            r.stability.stable + r.stability.dynamic,
            r.stability.multi_report_samples
        );
        active as f64 / slots as f64
    };
    let nominal = activity(1.0);
    let degraded = activity(1e9);
    assert!(nominal > 0.9, "nominal activity {nominal}");
    assert!(
        degraded < 0.8 * nominal,
        "saturated timeouts must visibly degrade activity: {degraded} vs {nominal}"
    );
}

#[test]
fn perfect_availability_is_quieter_than_nominal() {
    let mut perfect = SimConfig::new(5, 40_000);
    perfect.fleet.timeout_mult = 0.0;
    perfect.fleet.outage_mult = 0.0;
    let nominal = SimConfig::new(5, 40_000);

    let stable_fraction = |config: SimConfig| {
        let study = Study::generate(config);
        let s = vt_label_dynamics::dynamics::freshdyn::build(
            study.records(),
            study.sim().config().window_start(),
        );
        let table = vt_label_dynamics::dynamics::TrajectoryTable::build(
            study.records(),
            study.sim().config().window_start(),
        );
        let ctx = vt_label_dynamics::dynamics::AnalysisCtx::new(
            study.records(),
            &table,
            &s,
            study.sim().fleet(),
            study.sim().config().window_start(),
        );
        vt_label_dynamics::dynamics::stability::Stability
            .run(&ctx)
            .stable_fraction()
    };
    let s_perfect = stable_fraction(perfect);
    let s_nominal = stable_fraction(nominal);
    assert!(
        s_perfect > s_nominal + 0.05,
        "removing activity noise must raise stability: perfect {s_perfect} vs nominal {s_nominal}"
    );
}

#[test]
fn store_rejects_misuse_gracefully() {
    // Sealing an empty store and reading from it is fine.
    let store = vt_label_dynamics::store::ReportStore::new();
    store.seal();
    assert_eq!(store.report_count(), 0);
    assert!(store.group_by_sample().is_empty());
    assert!(store
        .sample_reports(vt_label_dynamics::model::SampleHash::from_ordinal(1))
        .is_empty());
    // Persisting an empty store round-trips.
    let mut buf = Vec::new();
    vt_label_dynamics::store::write_store(&store, &mut buf).expect("write empty");
    let loaded = vt_label_dynamics::store::read_store(&mut buf.as_slice()).expect("read empty");
    assert_eq!(loaded.report_count(), 0);
}

#[test]
fn persisted_study_store_round_trips() {
    let study = Study::generate(SimConfig::new(6, 5_000));
    let store = study.build_store();
    let mut buf = Vec::new();
    vt_label_dynamics::store::write_store(&store, &mut buf).expect("write");
    let loaded = vt_label_dynamics::store::read_store(&mut buf.as_slice()).expect("read");
    assert_eq!(loaded.report_count(), store.report_count());
    assert_eq!(loaded.sample_count(), store.sample_count());
    for rec in study.records().iter().take(100) {
        assert_eq!(loaded.sample_reports(rec.meta.hash), rec.reports);
    }
}

#[test]
fn legacy_v1_store_files_still_load() {
    let study = Study::generate(SimConfig::new(6, 2_000));
    let store = study.build_store();
    let mut buf = Vec::new();
    write_store_v1(&store, &mut buf).expect("write v1");
    let loaded = read_store(&mut buf.as_slice()).expect("read v1");
    assert_eq!(loaded.report_count(), store.report_count());
    assert_eq!(loaded.sample_count(), store.sample_count());
    let (salvaged, recovery) = read_store_salvage(&mut buf.as_slice()).expect("salvage v1");
    assert!(recovery.is_clean());
    assert_eq!(salvaged.report_count(), store.report_count());
}

/// The capstone equality: with duplicate + reorder faults only, the
/// collector's output analyzed end to end must be indistinguishable
/// from the fault-free study on the headline measurements.
#[test]
fn chaos_dup_reorder_ingestion_matches_fault_free_study() {
    const SAMPLES: u64 = 3_000;
    let study = Study::generate(SimConfig::new(0xC4A05, SAMPLES));
    let clean = study.run();

    let plan = FaultPlan::clean(0xFA117)
        .with_duplicates(0.25)
        .with_reordering(0.35, 20);
    let feed = FaultyFeed::from_sim(study.sim(), 0..SAMPLES, plan);
    let dups = feed.duplicated_entries();
    let delayed = feed.delayed_entries();
    let config = CollectorConfig {
        reorder_horizon: 20,
        ..CollectorConfig::default()
    };
    let outcome = Collector::new(config).run(feed);

    // The chaos actually happened and was fully absorbed.
    assert!(dups > 0 && delayed > 0, "plan injected no faults");
    assert_eq!(outcome.stats.deduped, dups);
    assert!(outcome.stats.reordered > 0);
    assert_eq!(outcome.stats.quarantined, 0);
    assert_eq!(outcome.stats.gap_minutes, 0);
    assert_eq!(outcome.stats.lost_entries, 0);
    assert_eq!(outcome.stats.emitted_out_of_order, 0);

    let records = records_from_store(&outcome.store);
    let results = analyze_records(
        &records,
        outcome.store.partition_stats(),
        study.sim().fleet(),
        study.sim().config().window_start(),
    );

    // Dataset totals.
    assert_eq!(
        results.dataset.total_samples(),
        clean.dataset.total_samples()
    );
    assert_eq!(
        results.dataset.total_reports(),
        clean.dataset.total_reports()
    );
    // Stability counts.
    assert_eq!(
        results.stability.multi_report_samples,
        clean.stability.multi_report_samples
    );
    assert_eq!(results.stability.stable, clean.stability.stable);
    assert_eq!(results.stability.dynamic, clean.stability.dynamic);
    // The fresh dynamic dataset S.
    assert_eq!(results.s_samples, clean.s_samples);
    assert_eq!(results.s_reports, clean.s_reports);
    // Flip totals.
    assert_eq!(results.flips.flips, clean.flips.flips);
    assert_eq!(results.flips.flips_up, clean.flips.flips_up);
    assert_eq!(results.flips.flips_down, clean.flips.flips_down);
    assert_eq!(results.flips.hazard_flips, clean.flips.hazard_flips);
}

/// Same plan, same seed → byte-identical `IngestStats`, independent of
/// how many workers generated the upstream dataset.
#[test]
fn ingest_stats_deterministic_across_runs_and_worker_counts() {
    let config = SimConfig::new(0xD00D, 800);
    let plan = FaultPlan::clean(99)
        .with_duplicates(0.2)
        .with_reordering(0.3, 12)
        .with_corruption(0.05)
        .with_outages(0.05, 0.25);
    let run = |workers: usize| {
        let study = Study::generate_with_workers(config, workers);
        let reports = study
            .records()
            .iter()
            .flat_map(|r| r.reports.iter().cloned())
            .collect::<Vec<_>>();
        Collector::default()
            .run(FaultyFeed::new(reports, plan))
            .stats
    };
    let a = run(1);
    let b = run(1);
    let c = run(4);
    assert_eq!(a, b, "same run twice");
    assert_eq!(a, c, "1 worker vs 4 workers");
    assert!(a.accepted > 0 && a.deduped > 0 && a.quarantined > 0);
}

/// Corrupting a fraction `p` of the blocks of a `VTSTORE2` file must
/// cost at most those blocks: salvage recovers ≥ (1 − p) of them.
#[test]
fn salvage_recovers_at_least_one_minus_p_of_blocks() {
    const P: f64 = 0.15;
    let study = Study::generate(SimConfig::new(0x5A17A6E, 14_000));
    let store = study.build_store();
    let mut buf = Vec::new();
    write_store(&store, &mut buf).expect("write v2");

    // Locate real block frames by validating marker + header + CRC —
    // the same check the salvage reader applies, so a marker byte
    // pattern inside a payload cannot fool the corruptor either.
    let marker = 0xB10C_F00Du32.to_le_bytes();
    let mut frames: Vec<(usize, usize)> = Vec::new(); // (payload offset, len)
    for pos in 0..buf.len().saturating_sub(16) {
        if buf[pos..pos + 4] != marker {
            continue;
        }
        let byte_len = u32::from_le_bytes(buf[pos + 8..pos + 12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 12..pos + 16].try_into().unwrap());
        let payload = pos + 16;
        if byte_len > 0
            && payload + byte_len <= buf.len()
            && crc32(&buf[payload..payload + byte_len]) == crc
        {
            frames.push((payload, byte_len));
        }
    }
    let total_blocks = frames.len() as u64;
    assert!(total_blocks >= 20, "study too small: {total_blocks} blocks");

    // Corrupt exactly ⌊p · blocks⌋ of them, chosen by a seeded shuffle.
    let corrupted = ((P * total_blocks as f64).floor() as u64).max(1);
    let mut rng = SmallRng::seed_from_u64(0xC0AAA5E);
    let mut order: Vec<usize> = (0..frames.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for &idx in order.iter().take(corrupted as usize) {
        let (payload, len) = frames[idx];
        let off = rng.gen_range(0..len);
        buf[payload + off] ^= 0x40;
    }

    let (salvaged, recovery) =
        read_store_salvage(&mut buf.as_slice()).expect("salvage a damaged file");
    assert_eq!(
        recovery.skipped_blocks(),
        corrupted,
        "one block lost per corruption"
    );
    assert_eq!(recovery.recovered_blocks(), total_blocks - corrupted);
    assert!(
        recovery.recovered_blocks() as f64 >= (1.0 - P) * total_blocks as f64,
        "recovered {} of {} blocks",
        recovery.recovered_blocks(),
        total_blocks
    );
    assert!(salvaged.report_count() > 0);
    assert!(salvaged.report_count() <= store.report_count());
}

/// Randomized damage sweep: whatever bytes we hand them, the strict and
/// salvage readers must return (Ok or Err) — never panic.
#[test]
fn damaged_store_bytes_never_panic_the_readers() {
    let study = Study::generate(SimConfig::new(0xB17F11, 1_500));
    let store = study.build_store();
    let mut v2 = Vec::new();
    write_store(&store, &mut v2).expect("write v2");
    let mut v1 = Vec::new();
    write_store_v1(&store, &mut v1).expect("write v1");

    let mut rng = SmallRng::seed_from_u64(0xBADC0DE);
    for case in 0..200 {
        let base = if case % 2 == 0 { &v2 } else { &v1 };
        let mut bytes = base.clone();
        // Truncate, flip bits, or both.
        if case % 3 != 0 {
            let cut = rng.gen_range(0..bytes.len());
            bytes.truncate(cut);
        }
        if case % 3 != 1 && !bytes.is_empty() {
            for _ in 0..rng.gen_range(1..24usize) {
                let bit = rng.gen_range(0..bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
        }
        // Must not panic; when salvage succeeds the result must be a
        // usable, sealed store.
        let _ = read_store(&mut bytes.as_slice());
        if let Ok((salvaged, recovery)) = read_store_salvage(&mut bytes.as_slice()) {
            assert!(recovery.recovered_reports() == salvaged.report_count());
            let _ = salvaged.group_by_sample();
        }
    }
}
