//! Degenerate inputs and fault injection: the pipeline must stay
//! well-defined at the edges (empty studies, tiny studies, hostile
//! fleet configurations).

use vt_label_dynamics::dynamics::Study;
use vt_label_dynamics::sim::SimConfig;

#[test]
fn empty_study_runs() {
    let study = Study::generate(SimConfig::new(1, 0));
    let r = study.run();
    assert_eq!(r.dataset.total_samples(), 0);
    assert_eq!(r.s_samples, 0);
    assert_eq!(r.flips.flips, 0);
    assert!(r.intervals.correlation.is_none());
    for sh in &r.categories_all.shares {
        // Empty sweep degrades to all-white (0/0 conventions), still a
        // partition.
        assert!((sh.white + sh.black + sh.gray - 1.0).abs() < 1e-9);
    }
    for s in &r.rank_stabilization {
        assert_eq!(s.samples, 0);
        assert_eq!(s.stabilized_fraction(), 0.0);
    }
}

#[test]
fn single_sample_study_runs() {
    let study = Study::generate(SimConfig::new(2, 1));
    let r = study.run();
    assert_eq!(r.dataset.total_samples(), 1);
    // One sample is almost surely single-report; S may be empty — all
    // downstream analyses must still hold their invariants.
    assert!(r.s_samples <= 1);
    assert_eq!(r.flips.flips, r.flips.flips_up + r.flips.flips_down);
}

#[test]
fn zero_glitch_rate_means_zero_hazard_flips() {
    let mut config = SimConfig::new(3, 30_000);
    config.fleet.glitch_rate = 0.0;
    let study = Study::generate(config);
    let r = study.run();
    assert!(r.flips.flips > 0, "study too small to observe flips");
    assert_eq!(
        r.flips.hazard_flips, 0,
        "hazard flips are structurally impossible without glitches"
    );
}

#[test]
fn saturated_timeouts_degrade_activity() {
    // Timeout probability saturated (the per-sample rate caps at 0.5 and
    // epoch/load factors modulate below it): activity must fall far
    // below nominal, and the pipeline must keep its invariants.
    let activity = |timeout_mult: f64| {
        let mut config = SimConfig::new(4, 2_000);
        config.fleet.timeout_mult = timeout_mult;
        let study = Study::generate(config);
        let mut active = 0u64;
        let mut slots = 0u64;
        for rec in study.records() {
            for rep in &rec.reports {
                active += rep.verdicts.active_count() as u64;
                slots += rep.verdicts.engine_count() as u64;
            }
        }
        let r = study.run();
        assert_eq!(
            r.stability.stable + r.stability.dynamic,
            r.stability.multi_report_samples
        );
        active as f64 / slots as f64
    };
    let nominal = activity(1.0);
    let degraded = activity(1e9);
    assert!(nominal > 0.9, "nominal activity {nominal}");
    assert!(
        degraded < 0.8 * nominal,
        "saturated timeouts must visibly degrade activity: {degraded} vs {nominal}"
    );
}

#[test]
fn perfect_availability_is_quieter_than_nominal() {
    let mut perfect = SimConfig::new(5, 40_000);
    perfect.fleet.timeout_mult = 0.0;
    perfect.fleet.outage_mult = 0.0;
    let nominal = SimConfig::new(5, 40_000);

    let stable_fraction = |config: SimConfig| {
        let study = Study::generate(config);
        vt_label_dynamics::dynamics::stability::analyze(study.records()).stable_fraction()
    };
    let s_perfect = stable_fraction(perfect);
    let s_nominal = stable_fraction(nominal);
    assert!(
        s_perfect > s_nominal + 0.05,
        "removing activity noise must raise stability: perfect {s_perfect} vs nominal {s_nominal}"
    );
}

#[test]
fn store_rejects_misuse_gracefully() {
    // Sealing an empty store and reading from it is fine.
    let store = vt_label_dynamics::store::ReportStore::new();
    store.seal();
    assert_eq!(store.report_count(), 0);
    assert!(store.group_by_sample().is_empty());
    assert!(store
        .sample_reports(vt_label_dynamics::model::SampleHash::from_ordinal(1))
        .is_empty());
    // Persisting an empty store round-trips.
    let mut buf = Vec::new();
    vt_label_dynamics::store::write_store(&store, &mut buf).expect("write empty");
    let loaded = vt_label_dynamics::store::read_store(&mut buf.as_slice()).expect("read empty");
    assert_eq!(loaded.report_count(), 0);
}

#[test]
fn persisted_study_store_round_trips() {
    let study = Study::generate(SimConfig::new(6, 5_000));
    let store = study.build_store();
    let mut buf = Vec::new();
    vt_label_dynamics::store::write_store(&store, &mut buf).expect("write");
    let loaded = vt_label_dynamics::store::read_store(&mut buf.as_slice()).expect("read");
    assert_eq!(loaded.report_count(), store.report_count());
    assert_eq!(loaded.sample_count(), store.sample_count());
    for rec in study.records().iter().take(100) {
        assert_eq!(loaded.sample_reports(rec.meta.hash), rec.reports);
    }
}
