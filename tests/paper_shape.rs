//! The paper-shape regression test: at a modest scale, the simulated
//! feed must reproduce the qualitative findings of every observation in
//! the paper (who wins, roughly by what factor, where crossovers fall).
//! Tolerances are deliberately generous — this is a shape test, not a
//! numeric match; exact paper-vs-measured tables live in EXPERIMENTS.md.

use vt_label_dynamics::dynamics::{Study, StudyResults};
use vt_label_dynamics::model::FileType;
use vt_label_dynamics::sim::SimConfig;

fn results() -> (Study, StudyResults) {
    let study = Study::generate(SimConfig::new(0x5AFE, 120_000));
    let r = study.run();
    (study, r)
}

#[test]
fn paper_shape_holds() {
    let (study, r) = results();
    let fleet = study.sim().fleet();

    // ---- §4 dataset landscape -------------------------------------
    // Fig. 1: heavy singleton mass.
    assert!(
        (r.fig1.singleton - 0.8881).abs() < 0.03,
        "singletons {}",
        r.fig1.singleton
    );
    assert!(r.fig1.under_20 > 0.99);
    assert!((r.dataset.fresh_fraction() - 0.9176).abs() < 0.02);
    // Table 3: Win32 EXE dominates.
    let table3 = r.dataset.table3();
    assert_eq!(table3[0].0, "Win32 EXE");
    assert!(
        (table3[0].2 - 25.2).abs() < 2.0,
        "Win32 EXE share {}",
        table3[0].2
    );

    // ---- Obs. 1: ~50/50 stable vs dynamic --------------------------
    let stable = r.stability.stable_fraction();
    assert!((0.42..=0.62).contains(&stable), "stable fraction {stable}");

    // ---- Obs. 2: stable samples are mostly benign ------------------
    assert!(r.stability.stable_at_zero_fraction() > 0.55);
    assert!(r.stability.stable_le5_fraction() > 0.70);
    // Benign stable samples hold their state longest: rank-0 span mean
    // exceeds the high-rank bucket's.
    let rank0 = r.stability.span_by_rank[0].expect("rank-0 box");
    let high = r.stability.span_by_rank
        [vt_label_dynamics::dynamics::stability::StabilityAnalysis::RANK_CAP]
        .expect("high-rank box");
    assert!(rank0.mean > high.mean, "benign spans should be longest");

    // ---- Obs. 3: delta distributions --------------------------------
    assert!((0.25..=0.55).contains(&r.metrics.delta_zero_fraction));
    assert!((0.35..=0.60).contains(&r.metrics.delta_over_2_fraction));
    assert!(r.metrics.delta_le_11_fraction > 0.85);

    // ---- Obs. 4: per-type ordering ----------------------------------
    let delta_mean = |ft: FileType| {
        r.metrics
            .per_type
            .iter()
            .find(|t| t.file_type == ft)
            .and_then(|t| t.delta_overall)
            .map(|b| b.mean)
            .unwrap_or(0.0)
    };
    // PE binaries move the most; JPEG/EPUB/FPX sit at the quiet end.
    assert!(delta_mean(FileType::Win32Exe) > delta_mean(FileType::Json));
    assert!(delta_mean(FileType::Win32Exe) > delta_mean(FileType::Txt));
    assert!(delta_mean(FileType::Win32Dll) > delta_mean(FileType::Xml));

    // ---- Obs. 5: difference grows with interval ---------------------
    let corr = r.intervals.correlation.expect("interval correlation");
    // The paper reports rho = 0.9181 over bins holding millions of pairs
    // each; at this test's scale the estimator is noise-limited, so we
    // assert the direction and significance rather than the magnitude
    // (EXPERIMENTS.md records the full-scale value).
    assert!(
        corr.rho > 0.15,
        "interval correlation too weak: {}",
        corr.rho
    );
    assert!(corr.p_value < 0.05, "p = {}", corr.p_value);

    // ---- Obs. 6: threshold-based labeling tolerates dynamics --------
    let gray_max = r.categories_all.gray_max().expect("sweep");
    assert!(gray_max.gray < 0.25, "gray max {}", gray_max.gray);
    // PE gray grows toward high thresholds (crossover shape of Fig. 8b):
    let pe = &r.categories_pe.shares;
    let pe_gray = |t: u32| pe.iter().find(|s| s.t == t).expect("t in sweep").gray;
    assert!(pe_gray(40) > pe_gray(5), "PE gray must grow with t");
    // Low thresholds are safe for PE (paper: <10% for t ≤ 24).
    assert!(pe_gray(3) < 0.10);

    // ---- Obs. 7: causes ---------------------------------------------
    assert!(
        r.causes.update_fraction() > 0.4,
        "updates should coincide with many flips"
    );
    assert!(
        r.causes.gap_consistency() > 0.9,
        "inactivity gaps are usually consistent"
    );

    // ---- Obs. 8: rank stabilization sweep ---------------------------
    let rs = &r.rank_stabilization;
    assert!(rs[0].stabilized_fraction() < 0.25, "r=0 is rare");
    assert!(rs[5].stabilized_fraction() > 0.75, "r=5 is common");
    for s in rs {
        if s.stabilized > 100 {
            assert!(
                s.within_30d_fraction() > 0.6,
                "most stabilize within 30 d (r={} got {})",
                s.r,
                s.within_30d_fraction()
            );
        }
    }

    // ---- Obs. 9: label stabilization --------------------------------
    for l in &r.label_stabilization_all {
        assert!(
            l.stabilized_fraction() > 0.85,
            "t={} stab {}",
            l.t,
            l.stabilized_fraction()
        );
    }

    // ---- Obs. 10 / §7.1: flips --------------------------------------
    let f = &r.flips;
    assert!(
        f.flips_up > 2 * f.flips_down,
        "0→1 flips dominate (paper 2.7:1)"
    );
    // Hazard flips are essentially absent (paper: 9 in 16.8 M).
    assert!(
        f.hazard_flips * 1_000 <= f.flips.max(1),
        "hazard flips {}/{}",
        f.hazard_flips,
        f.flips
    );
    // Named engine ordering: flip-prone vs stable.
    let ratio = |n: &str| f.engine_ratio(fleet.engine_by_name(n));
    assert!(ratio("F-Secure") > ratio("Jiangmin"));
    assert!(ratio("Arcabit") > ratio("AhnLab-V3"));

    // ---- Obs. 11 / §7.2: correlation --------------------------------
    let c = &r.correlation_global;
    let rho = |a: &str, b: &str| c.rho_between(fleet.engine_by_name(a), fleet.engine_by_name(b));
    assert!(rho("Paloalto", "APEX") > 0.8);
    assert!(rho("Avast", "AVG") > 0.8);
    assert!(rho("Webroot", "CrowdStrike") > 0.8);
    assert!(rho("BitDefender", "FireEye") > 0.8);
    assert!(
        rho("Kaspersky", "Zoner") < 0.8,
        "unrelated engines below the bar"
    );
    // The BitDefender OEM family lands in one group.
    let bd = fleet.engine_by_name("BitDefender");
    let gdata = fleet.engine_by_name("GData");
    let family = c
        .groups
        .iter()
        .find(|g| g.contains(&bd))
        .expect("BitDefender grouped");
    assert!(
        family.contains(&gdata),
        "GData belongs to the BitDefender family"
    );

    // Per-type quirk: Cyren–Fortinet strong on Win32 EXE, weak globally.
    let exe = &r.correlation_per_type[0];
    let exe_rho = exe.rho_between(
        fleet.engine_by_name("Cyren"),
        fleet.engine_by_name("Fortinet"),
    );
    let global_rho = rho("Cyren", "Fortinet");
    assert!(
        exe_rho > global_rho,
        "Cyren–Fortinet: EXE {exe_rho} vs global {global_rho}"
    );
    assert!(exe_rho > 0.8);
    // Avira–Cynet: strong globally, weaker on EXE.
    let exe_ac = exe.rho_between(fleet.engine_by_name("Avira"), fleet.engine_by_name("Cynet"));
    assert!(rho("Avira", "Cynet") > exe_ac);
    assert!(exe_ac < 0.8);
}
