//! Integration of the aggregation strategies with simulated reports:
//! monotonicity and consistency properties over real trajectories.

use vt_label_dynamics::aggregate::{
    Aggregator, Label, PercentageThreshold, Threshold, TrustedSubset,
};
use vt_label_dynamics::dynamics::Study;
use vt_label_dynamics::model::EngineId;
use vt_label_dynamics::sim::SimConfig;

#[test]
fn threshold_is_monotone_in_t() {
    let study = Study::generate(SimConfig::new(3, 2_000));
    for rec in study.records() {
        for rep in &rec.reports {
            let mut last_malicious = true;
            for t in 1..=60u32 {
                let label = Threshold(t).label_report(rep);
                let malicious = label == Label::Malicious;
                // Once a report stops clearing a threshold, higher
                // thresholds can't resurrect the malicious label.
                if !last_malicious {
                    assert!(!malicious, "non-monotone at t={t}");
                }
                last_malicious = malicious;
            }
        }
    }
}

#[test]
fn percentage_and_absolute_agree_at_the_boundary() {
    let study = Study::generate(SimConfig::new(5, 1_000));
    for rec in study.records().iter().take(300) {
        for rep in &rec.reports {
            let active = rep.verdicts.active_count();
            if active == 0 {
                continue;
            }
            // percentage p corresponds to absolute ceil(p × active).
            let pct = PercentageThreshold(0.5);
            let abs = Threshold((0.5 * active as f64).ceil() as u32);
            assert_eq!(
                pct.label_report(rep),
                abs.label_report(rep),
                "positives={} active={active}",
                rep.positives()
            );
        }
    }
}

#[test]
fn trusted_subset_is_bounded_by_full_vote() {
    let study = Study::generate(SimConfig::new(9, 1_000));
    let trusted = TrustedSubset {
        engines: (0..10).map(EngineId).collect(),
        min_hits: 1,
    };
    for rec in study.records().iter().take(300) {
        for rep in &rec.reports {
            // If any trusted engine flags, the full t=1 vote must flag.
            if trusted.label_report(rep) == Label::Malicious {
                assert_eq!(Threshold(1).label_report(rep), Label::Malicious);
            }
        }
    }
}

#[test]
fn positives_equals_t1_malicious_count() {
    // Cross-check VerdictVec::positives against label aggregation.
    let study = Study::generate(SimConfig::new(21, 500));
    for rec in study.records().iter().take(200) {
        for rep in &rec.reports {
            let by_iter = rep
                .verdicts
                .iter()
                .filter(|(_, v)| v.is_malicious())
                .count() as u32;
            assert_eq!(by_iter, rep.positives());
            assert_eq!(
                rep.positives() >= 1,
                Threshold(1).label_report(rep) == Label::Malicious
            );
        }
    }
}
