//! Property tests over the simulator: structural invariants that must
//! hold for *every* seed and population size, not just the calibrated
//! default.

use proptest::prelude::*;
use vt_label_dynamics::dynamics::Study;
use vt_label_dynamics::model::{ReportKind, Verdict};
use vt_label_dynamics::sim::SimConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn trajectories_are_structurally_sound(seed in any::<u64>(), samples in 1u64..400) {
        let study = Study::generate(SimConfig::new(seed, samples));
        let config = study.sim().config();
        prop_assert_eq!(study.records().len() as u64, samples);
        for rec in study.records() {
            prop_assert!(!rec.reports.is_empty());
            let mut last_time = None;
            let mut last_submitted: Option<u32> = None;
            for r in &rec.reports {
                // Reports belong to their sample and carry its type.
                prop_assert_eq!(r.sample, rec.meta.hash);
                prop_assert_eq!(r.file_type, rec.meta.file_type);
                // Time-ordered, inside the collection window.
                prop_assert!(r.analysis_date >= config.window_start());
                prop_assert!(r.analysis_date < config.window_end());
                if let Some(t) = last_time {
                    prop_assert!(r.analysis_date > t, "strictly increasing scan times");
                }
                last_time = Some(r.analysis_date);
                // Submission metadata semantics (Table 1).
                prop_assert!(r.last_submission_date <= r.analysis_date);
                prop_assert!(r.times_submitted >= 1);
                if let Some(prev) = last_submitted {
                    prop_assert!(r.times_submitted >= prev);
                    if r.kind == ReportKind::Rescan {
                        prop_assert_eq!(r.times_submitted, prev);
                    }
                }
                last_submitted = Some(r.times_submitted);
                // The report API never generates stored reports.
                prop_assert!(r.kind != ReportKind::Report);
                // Verdict vector covers the full roster.
                prop_assert_eq!(r.verdicts.engine_count(), 70);
                prop_assert!(r.positives() <= r.verdicts.active_count());
            }
            // Freshness is derivable from the report stream (what
            // records_from_store relies on).
            let derived_first = rec
                .reports
                .iter()
                .map(|r| r.last_submission_date)
                .min()
                .expect("nonempty");
            prop_assert_eq!(derived_first, rec.meta.first_submission);
            // Origin precedes first submission.
            prop_assert!(rec.meta.origin <= rec.meta.first_submission);
        }
    }

    #[test]
    fn per_engine_sequences_have_no_hazard_without_glitches(
        seed in any::<u64>(),
        samples in 50u64..200,
    ) {
        let mut config = SimConfig::new(seed, samples);
        config.fleet.glitch_rate = 0.0;
        let study = Study::generate(config);
        for rec in study.records() {
            for e in 0..70u8 {
                let labels: Vec<u8> = rec
                    .reports
                    .iter()
                    .filter_map(|r| r.verdicts.get(vt_label_dynamics::model::EngineId(e)).binary_label())
                    .collect();
                let flips = labels.windows(2).filter(|w| w[0] != w[1]).count();
                prop_assert!(
                    flips <= 1,
                    "engine {e} flipped {flips} times on one sample (hazard)"
                );
            }
        }
    }

    #[test]
    fn verdicts_are_three_valued_and_consistent(seed in any::<u64>()) {
        let study = Study::generate(SimConfig::new(seed, 50));
        for rec in study.records() {
            for r in &rec.reports {
                let mut positives = 0u32;
                let mut active = 0u32;
                for (_, v) in r.verdicts.iter() {
                    match v {
                        Verdict::Malicious => {
                            positives += 1;
                            active += 1;
                        }
                        Verdict::Benign => active += 1,
                        Verdict::Undetected => {}
                    }
                }
                prop_assert_eq!(positives, r.positives());
                prop_assert_eq!(active, r.verdicts.active_count());
            }
        }
    }
}
