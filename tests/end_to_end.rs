//! End-to-end integration: simulate → store → analyze, checking
//! cross-crate consistency and determinism.

use vt_label_dynamics::dynamics::{analyze_records_obs, Analysis, IncrementalStudy, Study};
use vt_label_dynamics::obs::Obs;
use vt_label_dynamics::sim::SimConfig;

fn study(seed: u64, samples: u64) -> Study {
    Study::generate(SimConfig::new(seed, samples))
}

#[test]
fn same_seed_same_results() {
    let a = study(7, 3_000);
    let b = study(7, 3_000);
    assert_eq!(a.records(), b.records());
    let ra = a.run();
    let rb = b.run();
    assert_eq!(ra.s_samples, rb.s_samples);
    assert_eq!(ra.flips.flips, rb.flips.flips);
    assert_eq!(
        ra.stability.stable_fraction(),
        rb.stability.stable_fraction()
    );
    assert_eq!(
        ra.correlation_global.strong_pairs.len(),
        rb.correlation_global.strong_pairs.len()
    );
}

#[test]
fn different_seeds_differ() {
    let a = study(1, 2_000);
    let b = study(2, 2_000);
    assert_ne!(a.records(), b.records());
}

#[test]
fn store_and_records_agree() {
    let study = study(11, 3_000);
    let store = study.build_store();
    // Totals agree.
    let total: usize = study.records().iter().map(|r| r.reports.len()).sum();
    assert_eq!(store.report_count() as usize, total);
    assert_eq!(store.sample_count() as usize, study.records().len());
    // Every sample's trajectory round-trips through the compressed store.
    for rec in study.records().iter().take(200) {
        assert_eq!(store.sample_reports(rec.meta.hash), rec.reports);
    }
    // Grouped iteration covers exactly the same data.
    let groups = store.group_by_sample();
    assert_eq!(groups.len(), study.records().len());
    let grouped_total: usize = groups.iter().map(|(_, v)| v.len()).sum();
    assert_eq!(grouped_total, total);
}

#[test]
fn results_are_internally_consistent() {
    let study = study(13, 6_000);
    let r = study.run();

    // §4 counts.
    assert_eq!(r.dataset.total_samples(), 6_000);
    let per_month: u64 = r.partitions.iter().map(|p| p.reports).sum();
    assert_eq!(per_month, r.dataset.total_reports());
    // All reports land inside the collection window (the catch-all
    // partition stays empty: the traffic model clamps to the window).
    assert_eq!(r.partitions.last().expect("catch-all").reports, 0);

    // §5: S ⊆ dynamic ⊆ multi-report.
    let st = &r.stability;
    assert_eq!(st.stable + st.dynamic, st.multi_report_samples);
    assert!(r.s_samples <= st.dynamic);
    assert!(st.multi_report_samples <= r.dataset.total_samples());
    assert_eq!(st.multi_report_samples, r.dataset.multi_report_samples());

    // §5.4 categories partition S.
    for sh in r
        .categories_all
        .shares
        .iter()
        .chain(&r.categories_pe.shares)
    {
        assert!((sh.white + sh.black + sh.gray - 1.0).abs() < 1e-9);
        assert!(sh.gray >= 0.0);
    }
    assert!(r.categories_pe.samples <= r.categories_all.samples);

    // §6: stabilization monotone in r; stabilized ≤ samples.
    for w in r.rank_stabilization.windows(2) {
        assert!(w[1].stabilized >= w[0].stabilized);
    }
    for l in r
        .label_stabilization_all
        .iter()
        .chain(&r.label_stabilization_multi)
    {
        assert!(l.stabilized <= l.samples);
        assert!(l.within_30d <= l.stabilized);
        assert!(l.within_15d <= l.within_30d);
    }

    // §7: flips decompose; matrix totals match.
    let f = &r.flips;
    assert_eq!(f.flips, f.flips_up + f.flips_down);
    let matrix_flips: u64 = f
        .matrix
        .iter()
        .flat_map(|row| row.iter())
        .map(|c| c.flips)
        .sum();
    assert_eq!(matrix_flips, f.flips);
    assert!(f.hazard_flips <= f.flips);

    // §7.2: rho symmetric in [-1, 1] (or NaN).
    let c = &r.correlation_global;
    for a in 0..c.engine_count {
        for b in 0..c.engine_count {
            let v = c.rho[a * c.engine_count + b];
            assert!(v.is_nan() || (-1.0..=1.0).contains(&v));
        }
    }
    for &(_, _, rho) in &c.strong_pairs {
        assert!(rho > 0.8);
    }
}

#[test]
fn store_only_records_analyze_identically() {
    // The paper's situation: nothing but the report store. Records
    // reconstructed from it must produce identical analysis results.
    let study = study(23, 5_000);
    let direct = study.run();

    let store = study.build_store();
    let from_store = vt_label_dynamics::dynamics::records_from_store(&store);
    assert_eq!(from_store.len(), study.records().len());

    let window_start = study.sim().config().window_start();
    let s = vt_label_dynamics::dynamics::freshdyn::build(&from_store, window_start);
    assert_eq!(s.len() as u64, direct.s_samples, "S must match");
    assert_eq!(s.reports, direct.s_reports);

    let table = vt_label_dynamics::dynamics::TrajectoryTable::build(&from_store, window_start);
    let ctx = vt_label_dynamics::dynamics::AnalysisCtx::new(
        &from_store,
        &table,
        &s,
        study.sim().fleet(),
        window_start,
    );

    let st = vt_label_dynamics::dynamics::stability::Stability.run(&ctx);
    assert_eq!(st.stable, direct.stability.stable);
    assert_eq!(st.dynamic, direct.stability.dynamic);

    let m = vt_label_dynamics::dynamics::metrics::Metrics.run(&ctx);
    assert_eq!(m.delta_zero_fraction, direct.metrics.delta_zero_fraction);

    let sweep = vt_label_dynamics::dynamics::categorize::Categorize::PE.run(&ctx);
    assert_eq!(sweep.samples, direct.categories_pe.samples);

    let fl = vt_label_dynamics::dynamics::flips::Flips.run(&ctx);
    assert_eq!(fl.flips, direct.flips.flips);
    assert_eq!(fl.hazard_flips, direct.flips.hazard_flips);
}

#[test]
fn incremental_folds_are_bit_identical_to_batch() {
    // The tentpole contract: folding the stream segment by segment and
    // merging partials must reproduce the one-shot batch run *bit for
    // bit* — for any segmentation, at any worker count. Debug output
    // fingerprints every integer field; the Spearman planes are compared
    // through `to_bits` so NaNs and signed zeros count too.
    let study = study(0x1DE17, 6_000);
    let records = study.records();
    let partitions = study.build_store().partition_stats();
    let window_start = study.sim().config().window_start();
    let fleet = study.sim().fleet();

    let batch = analyze_records_obs(
        records,
        partitions.clone(),
        fleet,
        window_start,
        1,
        Obs::noop(),
    );
    let batch_fp = format!("{batch:?}");

    for splits in [1usize, 3, 17] {
        for workers in [1usize, 2, 8] {
            let mut inc = IncrementalStudy::new(fleet, window_start).with_workers(workers);
            let chunk = records.len().div_ceil(splits);
            for segment in records.chunks(chunk) {
                inc.fold_segment(segment, Obs::noop());
            }
            assert_eq!(inc.segments(), splits as u64);
            let merged = inc.results(partitions.clone(), Obs::noop());
            assert_eq!(
                format!("{merged:?}"),
                batch_fp,
                "splits={splits} workers={workers}: Debug fingerprint diverged"
            );
            let pairs = std::iter::once((&merged.correlation_global, &batch.correlation_global))
                .chain(
                    merged
                        .correlation_per_type
                        .iter()
                        .zip(&batch.correlation_per_type),
                );
            for (m, b) in pairs {
                assert_eq!(m.rho.len(), b.rho.len());
                for (x, y) in m.rho.iter().zip(&b.rho) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "splits={splits} workers={workers}: rho diverged in {:?}",
                        m.scope
                    );
                }
            }
        }
    }
}

#[test]
fn analyses_never_read_ground_truth() {
    // Blinding check: scrubbing the ground truth from the records must
    // not change any analysis output (analyses may only read what the
    // paper's pipeline could read from scan reports).
    let study = study(17, 3_000);
    let r1 = study.run();

    let mut scrubbed: Vec<_> = study.records().to_vec();
    for rec in &mut scrubbed {
        rec.meta.truth = vt_label_dynamics::model::GroundTruth::Benign;
    }
    let window_start = study.sim().config().window_start();
    let s = vt_label_dynamics::dynamics::freshdyn::build(&scrubbed, window_start);
    assert_eq!(s.len() as u64, r1.s_samples);
    let table = vt_label_dynamics::dynamics::TrajectoryTable::build(&scrubbed, window_start);
    let ctx = vt_label_dynamics::dynamics::AnalysisCtx::new(
        &scrubbed,
        &table,
        &s,
        study.sim().fleet(),
        window_start,
    );
    let st = vt_label_dynamics::dynamics::stability::Stability.run(&ctx);
    assert_eq!(st.stable, r1.stability.stable);
    let m = vt_label_dynamics::dynamics::metrics::Metrics.run(&ctx);
    assert_eq!(m.delta_zero_fraction, r1.metrics.delta_zero_fraction);
}
