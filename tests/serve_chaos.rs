//! Chaos tests for the hardened `vtld serve` daemon.
//!
//! The contract under test (ISSUE 6 / DESIGN.md §11):
//!
//! * **Kill-recover bit-identity** — a daemon SIGKILLed mid-ingest and
//!   restarted with `--recover` over the same `--data-dir` must finish
//!   with a study fingerprint bit-identical to a never-killed run's, at
//!   every shard × worker combination.
//! * **Shard-count invariance** — the published fingerprint is
//!   identical at shards 1, 2 and 4 (the merger folds the fixed hash
//!   slots in canonical order, so shard parallelism can never show).
//! * **Quarantine self-healing** — a corrupted segment file quarantines
//!   (along with everything orphaned behind it) and its samples are
//!   simply re-ingested: same fingerprint, `quarantined_segments`
//!   counted, damaged bytes preserved under `quarantine/`.
//! * **Load shedding** — a connection flood gets typed `overloaded`
//!   responses beyond the client cap; epochs stay monotone, nothing
//!   panics, and no accepted sample is lost.
//!
//! The reference fingerprint (same feed, in-memory, never killed) is
//! computed once per test process and shared.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use vt_label_dynamics::obs::json;
use vt_label_dynamics::prelude::*;

/// One feed shared by every scenario: the fingerprints must agree
/// across all of them.
const SAMPLES: u64 = 2_400;
const SEED: u64 = 0x00C0_FFEE;
const SEGMENT_REPORTS: u64 = 400;

/// The chaos config for this feed at a given shard/worker count.
fn chaos_config(shards: usize, workers: usize) -> ServeConfig {
    let mut config = ServeConfig::new(SAMPLES, SEED);
    config.segment_reports = SEGMENT_REPORTS;
    config.workers = workers;
    config.shards = shards;
    config
}

/// Polls a live server until `ingest_done`, then returns the
/// `(fingerprint, rho_fnv)` pair and the final status document.
/// One request over a fresh connection; `None` when the connection was
/// refused or shed (the admission controller answers unprompted with
/// `overloaded:true` and closes, so a reused stream would break on the
/// next write — right after a flood the probe itself can be shed while
/// the server's connection accounting catches up with client closes).
fn try_ask(addr: SocketAddr, cmd: &str) -> Option<json::Value> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    stream
        .write_all(format!("{{\"cmd\":\"{cmd}\"}}\n").as_bytes())
        .ok()?;
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let v = json::parse(line.trim_end()).ok()?;
    if v.get("overloaded").and_then(|o| o.as_bool()) == Some(true) {
        return None;
    }
    Some(v)
}

fn await_fingerprint(addr: SocketAddr) -> ((String, String), json::Value) {
    let deadline = Instant::now() + Duration::from_secs(300);
    let status = loop {
        if let Some(v) = try_ask(addr, "status") {
            if v.get("ingest_done").and_then(|d| d.as_bool()) == Some(true) {
                break v;
            }
        }
        assert!(Instant::now() < deadline, "ingestion never finished");
        std::thread::sleep(Duration::from_millis(25));
    };
    let fp = loop {
        if let Some(v) = try_ask(addr, "fingerprint") {
            break v;
        }
        assert!(Instant::now() < deadline, "fingerprint never served");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(
        fp.get("ingest_done").and_then(|d| d.as_bool()),
        Some(true),
        "{fp:?}"
    );
    let pair = (
        fp.get("fingerprint")
            .and_then(|f| f.as_str())
            .expect("fingerprint member")
            .to_string(),
        fp.get("rho_fnv")
            .and_then(|f| f.as_str())
            .expect("rho_fnv member")
            .to_string(),
    );
    (pair, status)
}

/// Runs one in-process server to completion and returns its fingerprint
/// pair and final status.
fn run_to_completion(config: ServeConfig) -> ((String, String), json::Value) {
    let server = Server::start(config).expect("start server");
    let out = await_fingerprint(server.addr());
    server.shutdown();
    server.wait();
    out
}

/// The never-killed, in-memory reference fingerprint for this feed,
/// computed once per test process.
fn reference_fingerprint() -> &'static (String, String) {
    static REFERENCE: OnceLock<(String, String)> = OnceLock::new();
    REFERENCE.get_or_init(|| run_to_completion(chaos_config(1, 1)).0)
}

/// A unique scratch directory for one scenario's segment log.
fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vtld-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Counts durable (non-tmp, non-quarantined) segment files in a data
/// dir.
fn segment_files(dir: &PathBuf) -> usize {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file() && e.file_name().to_string_lossy().ends_with(".vtseg"))
            .count(),
        Err(_) => 0,
    }
}

/// The full kill-recover scenario: spawn the real `vtld` binary on this
/// feed with a durable segment log, SIGKILL it mid-ingest, then recover
/// in-process over the same directory and demand the reference
/// fingerprint, bit for bit.
fn kill_mid_ingest_then_recover(tag: &str, shards: usize, workers: usize) {
    let data_dir = temp_data_dir(tag);

    let mut child = Command::new(env!("CARGO_BIN_EXE_vtld"))
        .args([
            "serve",
            "--samples",
            &SAMPLES.to_string(),
            "--seed",
            &format!("{SEED:#x}"),
            "--segment-reports",
            &SEGMENT_REPORTS.to_string(),
            "--workers",
            &workers.to_string(),
            "--shards",
            &shards.to_string(),
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn vtld serve");

    // Wait until the write-ahead log holds a few durable segments —
    // proof the daemon is mid-ingest — then SIGKILL it. No grace, no
    // drain: whatever the log holds is all that survives.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if segment_files(&data_dir) >= 3 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("vtld serve exited early with {status}");
        }
        assert!(
            Instant::now() < deadline,
            "no segments appeared in {}",
            data_dir.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap child");

    // A dirty data dir must refuse to start without recovery enabled —
    // silently interleaving two runs' streams is the one unforgivable
    // outcome.
    let mut config = chaos_config(shards, workers);
    config.data_dir = Some(data_dir.clone());
    let err = Server::start(config.clone()).expect_err("dirty dir must refuse without recover");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");

    // Recover: replay the clean prefix, resume ingest past it, finish.
    config.recover = true;
    let (fingerprint, status) = run_to_completion(config);
    assert_eq!(
        &fingerprint,
        reference_fingerprint(),
        "recovered run (shards={shards}, workers={workers}) must be \
         bit-identical to the never-killed run"
    );
    assert!(
        status
            .get("recovered_segments")
            .and_then(|r| r.as_u64())
            .expect("recovered_segments member")
            >= 3,
        "{status:?}"
    );
    assert_eq!(
        status.get("samples").and_then(|s| s.as_u64()),
        Some(SAMPLES),
        "every sample must be folded exactly once after recovery"
    );

    std::fs::remove_dir_all(&data_dir).expect("cleanup");
}

#[test]
fn kill_recover_bit_identical_shards1_workers1() {
    kill_mid_ingest_then_recover("s1w1", 1, 1);
}

/// SIGKILL mid-ingest with a JSONL alert sink attached: the recovered
/// run replays the WAL (regenerating the same alerts under the same
/// keys) and must end with an alert file that is duplicate-free and
/// set-equal to a never-killed run's — exactly-once delivery across
/// the crash (DESIGN.md §15).
#[test]
fn kill_recover_delivers_each_alert_exactly_once() {
    let data_dir = temp_data_dir("alerts");
    std::fs::create_dir_all(&data_dir).expect("mkdir");
    let alerts_path = data_dir.join("alerts.jsonl");

    let mut child = Command::new(env!("CARGO_BIN_EXE_vtld"))
        .args([
            "serve",
            "--samples",
            &SAMPLES.to_string(),
            "--seed",
            &format!("{SEED:#x}"),
            "--segment-reports",
            &SEGMENT_REPORTS.to_string(),
            "--shards",
            "2",
            "--workers",
            "2",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().expect("utf-8 temp path"),
            "--alerts-out",
            alerts_path.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn vtld serve");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if segment_files(&data_dir) >= 3 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("vtld serve exited early with {status}");
        }
        assert!(Instant::now() < deadline, "no segments appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap child");

    // Recover in-process over the same WAL *and* the same alert file.
    let mut config = chaos_config(2, 2);
    config.data_dir = Some(data_dir.clone());
    config.recover = true;
    config.alerts_out = Some(alerts_path.clone());
    let (fingerprint, _) = run_to_completion(config);
    assert_eq!(&fingerprint, reference_fingerprint());

    // A clean, never-killed run over the same feed defines the exact
    // alert set that must have been delivered.
    let clean_path = data_dir.join("alerts-clean.jsonl");
    let mut clean = chaos_config(2, 2);
    clean.alerts_out = Some(clean_path.clone());
    let (fingerprint, _) = run_to_completion(clean);
    assert_eq!(&fingerprint, reference_fingerprint());

    let read_lines = |p: &PathBuf| -> Vec<String> {
        std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
            .lines()
            .map(str::to_string)
            .collect()
    };
    let survived = read_lines(&alerts_path);
    let mut deduped = survived.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(
        deduped.len(),
        survived.len(),
        "the recovery replay appended a duplicate alert"
    );
    let mut expect = read_lines(&clean_path);
    assert!(!expect.is_empty(), "this feed must fire alerts");
    expect.sort();
    assert_eq!(
        deduped, expect,
        "crash + recovery must deliver exactly the clean run's alerts"
    );

    std::fs::remove_dir_all(&data_dir).expect("cleanup");
}

#[test]
fn kill_recover_bit_identical_shards2_workers2() {
    kill_mid_ingest_then_recover("s2w2", 2, 2);
}

#[test]
fn kill_recover_bit_identical_shards4_workers8() {
    kill_mid_ingest_then_recover("s4w8", 4, 8);
}

#[test]
fn fingerprint_bit_identical_across_shard_and_worker_counts() {
    // The full shards 1/2/4 × workers 1/2/8 grid against the (1, 1)
    // reference: the merger's cached slot merge tree re-merges only
    // dirty root paths, and must still publish exactly the canonical
    // slot-order bits at every combination.
    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2, 8] {
            if (shards, workers) == (1, 1) {
                continue; // the reference itself
            }
            let (fingerprint, _) = run_to_completion(chaos_config(shards, workers));
            assert_eq!(
                &fingerprint,
                reference_fingerprint(),
                "shards={shards}, workers={workers} must publish the same bits as shards=1"
            );
        }
    }
}

#[test]
fn corrupt_segment_quarantines_and_recovery_self_heals() {
    let data_dir = temp_data_dir("quarantine");

    // A clean durable run to completion seeds the log.
    let mut config = chaos_config(2, 2);
    config.data_dir = Some(data_dir.clone());
    let (fingerprint, _) = run_to_completion(config.clone());
    assert_eq!(&fingerprint, reference_fingerprint());

    // Corrupt some slot's seq-1 segment mid-payload: salvage will only
    // partially recover it, so replay must quarantine it *and* the same
    // slot's later segments (orphaned behind the gap).
    let victim = std::fs::read_dir(&data_dir)
        .expect("read data dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .map(|n| {
                    let n = n.to_string_lossy();
                    n.starts_with("seg-") && n.ends_with("-0000000001.vtseg")
                })
                .unwrap_or(false)
        })
        .expect("some slot sealed at least two segments");
    let mut bytes = std::fs::read(&victim).expect("read victim");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, bytes).expect("rewrite victim");
    // Interrupted-persist leftovers must be ignored, not tripped over.
    std::fs::write(data_dir.join("seg-000-0000000099.vtseg.tmp"), b"junk").expect("tmp litter");

    // Recovery serves from the clean prefix and re-ingests the rest —
    // converging on the same bits, with the damage counted and kept.
    config.recover = true;
    let (fingerprint, status) = run_to_completion(config);
    assert_eq!(
        &fingerprint,
        reference_fingerprint(),
        "quarantine-and-reingest must converge on the reference bits"
    );
    assert!(
        status
            .get("quarantined_segments")
            .and_then(|q| q.as_u64())
            .expect("quarantined_segments member")
            >= 1,
        "{status:?}"
    );
    let quarantine = data_dir.join("quarantine");
    assert!(
        std::fs::read_dir(&quarantine)
            .expect("quarantine dir exists")
            .next()
            .is_some(),
        "damaged segments are preserved for inspection"
    );

    std::fs::remove_dir_all(&data_dir).expect("cleanup");
}

#[test]
fn connection_flood_sheds_load_and_loses_nothing() {
    let mut config = chaos_config(2, 2);
    config.max_clients = 4;
    let server = Server::start(config).expect("start server");
    let addr = server.addr();

    // 24 clients vs a 4-connection cap, hammering while ingestion runs.
    let floods: Vec<_> = (0..24)
        .map(|_| {
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut shed = 0u64;
                let mut last_epoch = 0u64;
                for _ in 0..15 {
                    let Ok(mut stream) = TcpStream::connect(addr) else {
                        continue;
                    };
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut line = String::new();
                    let first = {
                        // An admitted connection answers our request; a
                        // shed one responds unprompted. Write first —
                        // the shed path never reads it.
                        if stream.write_all(b"{\"cmd\":\"status\"}\n").is_err() {
                            continue;
                        }
                        reader.read_line(&mut line)
                    };
                    if first.map(|n| n == 0).unwrap_or(true) {
                        continue;
                    }
                    let v = json::parse(line.trim_end())
                        .unwrap_or_else(|e| panic!("unparseable flood response: {e}: {line}"));
                    let epoch = v
                        .get("epoch")
                        .and_then(|e| e.as_u64())
                        .expect("every response carries the epoch");
                    assert!(epoch >= last_epoch, "epoch went backwards under flood");
                    last_epoch = epoch;
                    if v.get("overloaded").and_then(|o| o.as_bool()) == Some(true) {
                        assert!(v.get("error").is_some(), "{line}");
                        shed += 1;
                    } else {
                        assert!(v.get("samples").is_some(), "{line}");
                        served += 1;
                    }
                }
                (served, shed)
            })
        })
        .collect();

    let mut served = 0u64;
    let mut shed = 0u64;
    for f in floods {
        let (s, r) = f.join().expect("flood thread");
        served += s;
        shed += r;
    }
    assert!(shed > 0, "24 clients vs cap 4 must shed something");
    assert!(served > 0, "admitted clients must still be answered");

    // The flood must not have cost a single accepted sample.
    let (_, status) = await_fingerprint(addr);
    assert_eq!(
        status.get("samples").and_then(|s| s.as_u64()),
        Some(SAMPLES)
    );
    assert!(
        status.get("rejected").and_then(|r| r.as_u64()).is_some(),
        "the shed counter must be published: {status:?}"
    );
    server.shutdown();
    server.wait();
}
