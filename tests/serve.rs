//! Smoke test for the `vtld serve` daemon: concurrent clients query a
//! live server *while* it ingests the chaos-injected feed, and every
//! answer must be a parseable, epoch-consistent snapshot.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use vt_label_dynamics::obs::json;
use vt_label_dynamics::prelude::*;

/// One request/response round-trip over an existing connection.
fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, cmd: &str) -> json::Value {
    stream
        .write_all(format!("{{\"cmd\":\"{cmd}\"}}\n").as_bytes())
        .expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(line.ends_with('\n'), "response must be newline-terminated");
    json::parse(line.trim_end()).unwrap_or_else(|e| panic!("unparseable {cmd} response: {e}"))
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

#[test]
fn serve_answers_concurrent_clients_during_ingestion() {
    let mut config = ServeConfig::new(4_000, 0x5E12E);
    config.segment_reports = 1_000; // several seals → several epoch swaps
    config.workers = 2;
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr();

    // 8 concurrent clients hammer the four query commands while the
    // ingest thread folds segments and swaps snapshots underneath them.
    let clients: Vec<_> = (0..8)
        .map(|client| {
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                let mut last_epoch = 0u64;
                for round in 0..40 {
                    let cmd = ["status", "results", "engines", "metrics"][round % 4];
                    let v = ask(&mut stream, &mut reader, cmd);
                    let epoch = v
                        .get("epoch")
                        .and_then(|e| e.as_u64())
                        .unwrap_or_else(|| panic!("client {client}: {cmd} lacks epoch"));
                    assert!(
                        epoch >= last_epoch,
                        "client {client}: epoch went backwards ({epoch} < {last_epoch})"
                    );
                    last_epoch = epoch;
                    match cmd {
                        "status" => assert!(v.get("samples").is_some()),
                        "results" => assert!(v.get("dataset").is_some()),
                        "engines" => assert!(v.get("engines").is_some()),
                        _ => assert!(v.get("metrics").is_some()),
                    }
                }
                last_epoch
            })
        })
        .collect();

    // A ninth connection watches for ingestion to finish.
    let (mut stream, mut reader) = connect(addr);
    let final_status = loop {
        let v = ask(&mut stream, &mut reader, "status");
        if v.get("ingest_done").and_then(|d| d.as_bool()) == Some(true) {
            break v;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert!(
        final_status.get("epoch").and_then(|e| e.as_u64()).unwrap() >= 2,
        "expected at least one segment swap plus the final swap"
    );
    assert_eq!(
        final_status.get("samples").and_then(|s| s.as_u64()),
        Some(4_000)
    );

    for c in clients {
        c.join().expect("client thread");
    }

    // Unknown commands get a typed error, not a dropped connection.
    let err = ask(&mut stream, &mut reader, "bogus");
    assert!(err.get("error").is_some());
    assert!(err.get("epoch").is_some());

    // A fresh client still sees the final snapshot after ingestion.
    let (mut s2, mut r2) = connect(addr);
    let results = ask(&mut s2, &mut r2, "results");
    assert_eq!(
        results
            .get("dataset")
            .and_then(|d| d.get("samples"))
            .and_then(|s| s.as_u64()),
        Some(4_000)
    );

    // Shutdown over the wire; wait() must return.
    let bye = ask(&mut stream, &mut reader, "shutdown");
    assert_eq!(
        bye.get("shutting_down").and_then(|b| b.as_bool()),
        Some(true)
    );
    server.wait();
}
