//! Smoke tests for the `vtld serve` daemon: concurrent clients query a
//! live server *while* it ingests the chaos-injected feed, every answer
//! must be a parseable, epoch-consistent snapshot — and hostile wire
//! input (oversized lines, truncated JSON, binary garbage, half-closed
//! or silent sockets) must earn typed errors or eviction, never a
//! panic, a hang, or a wedged daemon.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use vt_label_dynamics::obs::json;
use vt_label_dynamics::prelude::*;

/// One request/response round-trip over an existing connection.
fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, cmd: &str) -> json::Value {
    stream
        .write_all(format!("{{\"cmd\":\"{cmd}\"}}\n").as_bytes())
        .expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(line.ends_with('\n'), "response must be newline-terminated");
    json::parse(line.trim_end()).unwrap_or_else(|e| panic!("unparseable {cmd} response: {e}"))
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

#[test]
fn serve_answers_concurrent_clients_during_ingestion() {
    let mut config = ServeConfig::new(4_000, 0x5E12E);
    config.segment_reports = 1_000; // several seals → several epoch swaps
    config.workers = 2;
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr();

    // 8 concurrent clients hammer the four query commands while the
    // ingest thread folds segments and swaps snapshots underneath them.
    let clients: Vec<_> = (0..8)
        .map(|client| {
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                let mut last_epoch = 0u64;
                for round in 0..40 {
                    let cmd = ["status", "results", "engines", "metrics"][round % 4];
                    let v = ask(&mut stream, &mut reader, cmd);
                    let epoch = v
                        .get("epoch")
                        .and_then(|e| e.as_u64())
                        .unwrap_or_else(|| panic!("client {client}: {cmd} lacks epoch"));
                    assert!(
                        epoch >= last_epoch,
                        "client {client}: epoch went backwards ({epoch} < {last_epoch})"
                    );
                    last_epoch = epoch;
                    match cmd {
                        "status" => assert!(v.get("samples").is_some()),
                        "results" => assert!(v.get("dataset").is_some()),
                        "engines" => assert!(v.get("engines").is_some()),
                        _ => assert!(v.get("metrics").is_some()),
                    }
                }
                last_epoch
            })
        })
        .collect();

    // A ninth connection watches for ingestion to finish.
    let (mut stream, mut reader) = connect(addr);
    let final_status = loop {
        let v = ask(&mut stream, &mut reader, "status");
        if v.get("ingest_done").and_then(|d| d.as_bool()) == Some(true) {
            break v;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert!(
        final_status.get("epoch").and_then(|e| e.as_u64()).unwrap() >= 2,
        "expected at least one segment swap plus the final swap"
    );
    assert_eq!(
        final_status.get("samples").and_then(|s| s.as_u64()),
        Some(4_000)
    );

    for c in clients {
        c.join().expect("client thread");
    }

    // Unknown commands get a typed error, not a dropped connection.
    let err = ask(&mut stream, &mut reader, "bogus");
    assert!(err.get("error").is_some());
    assert!(err.get("epoch").is_some());

    // A fresh client still sees the final snapshot after ingestion.
    let (mut s2, mut r2) = connect(addr);
    let results = ask(&mut s2, &mut r2, "results");
    assert_eq!(
        results
            .get("dataset")
            .and_then(|d| d.get("samples"))
            .and_then(|s| s.as_u64()),
        Some(4_000)
    );

    // Shutdown over the wire; wait() must return.
    let bye = ask(&mut stream, &mut reader, "shutdown");
    assert_eq!(
        bye.get("shutting_down").and_then(|b| b.as_bool()),
        Some(true)
    );
    server.wait();
}

/// Sends raw bytes on a fresh connection and returns the first response
/// line (if the server sent one before closing).
fn send_raw(addr: std::net::SocketAddr, payload: &[u8]) -> Option<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(payload).expect("write payload");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line),
        Err(_) => None,
    }
}

/// A tiny idle server for protocol-abuse tests: no ingestion to speak
/// of, tight limits so hostile input trips them quickly.
fn hostile_test_server() -> Server {
    let mut config = ServeConfig::new(50, 0xBAD);
    config.segment_reports = 1_000;
    config.workers = 1;
    config.max_line_bytes = 256;
    config.read_timeout = Duration::from_millis(400);
    Server::start(config).expect("bind ephemeral port")
}

#[test]
fn hostile_wire_input_gets_typed_errors_never_a_panic() {
    let server = hostile_test_server();
    let addr = server.addr();

    // Truncated JSON: typed parse error carrying the epoch.
    let line = send_raw(addr, b"{\"cmd\":\"sta\n").expect("a response");
    let v = json::parse(line.trim_end()).expect("parseable error response");
    assert!(v.get("error").is_some(), "{line}");
    assert!(v.get("epoch").is_some(), "{line}");

    // Binary garbage (not UTF-8, not JSON): typed error, not a panic.
    let mut garbage = vec![0xFFu8, 0xFE, 0x00, 0x9B, 0x01, 0x80];
    garbage.push(b'\n');
    let line = send_raw(addr, &garbage).expect("a response");
    let v = json::parse(line.trim_end()).expect("parseable error response");
    assert!(v.get("error").is_some(), "{line}");

    // A wrong-typed cmd member: typed error.
    let line = send_raw(addr, b"{\"cmd\":42}\n").expect("a response");
    let v = json::parse(line.trim_end()).expect("parseable error response");
    assert!(v.get("error").is_some(), "{line}");

    // An oversized request line (no newline until way past the limit):
    // the client is evicted with a typed response and the connection is
    // closed.
    let mut huge = vec![b'a'; 4 * 1024];
    huge.push(b'\n');
    let line = send_raw(addr, &huge).expect("an eviction notice");
    let v = json::parse(line.trim_end()).expect("parseable eviction response");
    assert_eq!(v.get("evicted").and_then(|e| e.as_bool()), Some(true));
    assert!(v.get("error").is_some(), "{line}");

    // Half-closed socket: the client shuts down its write side without
    // sending anything; the server must treat it as EOF and move on.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut rest = Vec::new();
        let mut reader = BufReader::new(stream);
        let _ = reader.read_to_end(&mut rest); // server closes quietly
    }

    // After all of that abuse, a well-formed client is served normally.
    let (mut stream, mut reader) = connect(addr);
    let v = ask(&mut stream, &mut reader, "status");
    assert!(v.get("epoch").is_some());
    server.shutdown();
    server.wait();
}

#[test]
fn unterminated_final_request_is_answered_at_eof() {
    // Regression: a client whose last request line lacks the trailing
    // newline (it shuts down its write half right after the bytes) used
    // to be dropped silently — EOF discarded the buffered partial line.
    // EOF now terminates the final line and the request is answered.
    let server = hostile_test_server();
    let addr = server.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(b"{\"cmd\":\"status\"}") // no '\n'
        .expect("write unterminated request");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close after the partial line");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("a response");
    let v = json::parse(line.trim_end()).expect("parseable response");
    assert!(
        v.get("samples").is_some(),
        "the unterminated request must be answered as a status query: {line}"
    );
    // ...after which the connection sees a clean EOF.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);

    server.shutdown();
    server.wait();
}

#[test]
fn request_line_bound_is_exact() {
    // Regression: the length check ran after buffering, so the
    // documented max_line_bytes bound could be exceeded by up to one
    // BufReader chunk. The bound is now exact: a line of exactly `max`
    // bytes is served, one more byte evicts.
    let server = hostile_test_server(); // max_line_bytes = 256
    let addr = server.addr();

    // Exactly 256 bytes of valid JSON (newline excluded from the bound).
    let base = "{\"cmd\":\"status\",\"pad\":\"\"}";
    let mut exact = format!(
        "{{\"cmd\":\"status\",\"pad\":\"{}\"}}",
        "a".repeat(256 - base.len())
    )
    .into_bytes();
    assert_eq!(exact.len(), 256);
    exact.push(b'\n');
    let line = send_raw(addr, &exact).expect("a response");
    let v = json::parse(line.trim_end()).expect("parseable response");
    assert!(
        v.get("samples").is_some(),
        "a line of exactly max bytes must be served: {line}"
    );

    // 257 bytes: evicted, not serviced.
    let mut over = vec![b'a'; 257];
    over.push(b'\n');
    let line = send_raw(addr, &over).expect("an eviction notice");
    let v = json::parse(line.trim_end()).expect("parseable eviction response");
    assert_eq!(
        v.get("evicted").and_then(|e| e.as_bool()),
        Some(true),
        "one byte past the bound must evict: {line}"
    );

    server.shutdown();
    server.wait();
}

#[test]
fn poisoned_slot_lock_degrades_instead_of_killing_the_daemon() {
    // Regression: a panic while holding a slot lock used to cascade —
    // every later lock().expect() panicked in turn, wedging the daemon.
    // Poisoning is now recovered, counted, and surfaced as degraded.
    let mut config = ServeConfig::new(2_000, 0xDE6);
    config.segment_reports = 300;
    config.workers = 1;
    config.shards = 2;
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr();
    server.poison_slot(0);

    // The daemon keeps ingesting and answering through the poisoned
    // slot; ingestion still completes.
    let (mut stream, mut reader) = connect(addr);
    let final_status = loop {
        let v = ask(&mut stream, &mut reader, "status");
        if v.get("ingest_done").and_then(|d| d.as_bool()) == Some(true) {
            break v;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        final_status.get("degraded").and_then(|d| d.as_bool()),
        Some(true),
        "a publish past a poisoned slot must be flagged: {final_status:?}"
    );
    assert!(
        final_status
            .get("poisoned")
            .and_then(|p| p.as_u64())
            .unwrap_or(0)
            > 0,
        "recoveries must be counted on serve/poisoned"
    );
    assert_eq!(
        final_status.get("samples").and_then(|s| s.as_u64()),
        Some(2_000),
        "the poisoned slot's stream must still fold to completion"
    );

    // Lazily rendered per-hash responses carry the degraded marker too.
    stream
        .write_all(b"{\"cmd\":\"sample\",\"hash\":\"ff\"}\n")
        .expect("write sample query");
    let mut line = String::new();
    reader.read_line(&mut line).expect("sample response");
    let v = json::parse(line.trim_end()).expect("parseable sample response");
    assert_eq!(v.get("degraded").and_then(|d| d.as_bool()), Some(true));

    // And a fresh client is still served — no cascade.
    let (mut s2, mut r2) = connect(addr);
    let v = ask(&mut s2, &mut r2, "results");
    assert!(v.get("dataset").is_some());

    server.shutdown();
    server.wait();
}

#[test]
fn silent_clients_are_evicted_on_the_read_deadline() {
    let server = hostile_test_server();
    let addr = server.addr();

    // Connect and say nothing: the read deadline must evict us with a
    // typed response instead of holding the slot forever.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client timeout");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("eviction notice");
    let v = json::parse(line.trim_end()).expect("parseable eviction response");
    assert_eq!(v.get("evicted").and_then(|e| e.as_bool()), Some(true));
    // ...and the connection is then closed.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);

    server.shutdown();
    server.wait();
}

#[test]
fn connection_cap_sheds_load_with_typed_overloaded_responses() {
    let mut config = ServeConfig::new(50, 0xCA5);
    config.segment_reports = 1_000;
    config.workers = 1;
    config.max_clients = 2;
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr();

    // Two admitted clients, proven live by a round-trip each.
    let mut held: Vec<_> = (0..2)
        .map(|_| {
            let (mut stream, mut reader) = connect(addr);
            let v = ask(&mut stream, &mut reader, "status");
            assert!(v.get("epoch").is_some());
            (stream, reader)
        })
        .collect();

    // The third connection is shed at the gate with a typed response.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("overload notice");
    let v = json::parse(line.trim_end()).expect("parseable overload response");
    assert_eq!(v.get("overloaded").and_then(|o| o.as_bool()), Some(true));
    assert!(v.get("error").is_some(), "{line}");
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0, "then closed");

    // Freeing a slot re-admits new clients (retry until the handler's
    // exit is visible to the admission gate).
    drop(held.pop());
    let mut admitted = false;
    for _ in 0..100 {
        let (mut stream, mut reader) = connect(addr);
        stream
            .write_all(b"{\"cmd\":\"status\"}\n")
            .expect("write request");
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        let v = json::parse(line.trim_end()).expect("parseable response");
        if v.get("overloaded").is_none() {
            assert!(v.get("samples").is_some(), "{line}");
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(admitted, "slot release must re-open admission");

    drop(held);
    server.shutdown();
    server.wait();
}
