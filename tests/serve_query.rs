//! Per-hash query correctness for the `vtld serve` daemon (ISSUE 7).
//!
//! The contract under test (DESIGN.md §12):
//!
//! * **Bit-match** — every `sample`, `stabilized`, `engine` and
//!   `flip_leaders` answer must agree field-for-field with a
//!   [`SampleIndex`] folded directly over the same faulty feed, at
//!   every shard × worker combination (the index rides the same
//!   fold/merge algebra as the study partials, so parallelism can
//!   never show in an answer).
//! * **Epoch consistency** — a response is rendered from exactly one
//!   published snapshot: epochs observed on one connection are
//!   monotone, and two answers for the same hash at the same epoch are
//!   byte-identical (the hot-sample cache may serve one of them, but
//!   it must never mix epochs).
//!
//! The reference index is computed once per test process: the daemon
//! feed is replicated exactly — same simulator, same default
//! [`FaultPlan`] as [`ServeConfig::new`], and `SAMPLES` kept under one
//! ingest chunk (1 024) so the chunked collector sees the identical
//! delivery stream.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use vt_label_dynamics::dynamics::stabilization::FIG9_THRESHOLDS;
use vt_label_dynamics::model::EngineId;
use vt_label_dynamics::obs::json;
use vt_label_dynamics::prelude::*;

const SAMPLES: u64 = 1_000; // one ingest chunk: daemon feed == reference feed
const SEED: u64 = 0xD1CE;
const SEGMENT_REPORTS: u64 = 300;

/// The directly folded ground truth every served answer must match.
struct Reference {
    index: SampleIndex,
    results: StudyResults,
    engine_names: Vec<String>,
}

fn reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let sim = VirusTotalSim::new(SimConfig::new(SEED, SAMPLES));
        // ServeConfig::new's default fault plan, replicated exactly.
        let plan = FaultPlan::clean(SEED)
            .with_duplicates(0.01)
            .with_reordering(0.05, 30);
        let feed = FaultyFeed::from_sim(&sim, 0..SAMPLES, plan);
        let outcome = Collector::default().run(feed);
        let records = records_from_store(&outcome.store);
        let window_start = sim.config().window_start();
        let table = TrajectoryTable::build(&records, window_start);
        let index = SampleIndex::fold(&records, &table);
        let results = analyze_records(&records, Vec::new(), sim.fleet(), window_start);
        let engine_names = (0..results.flips.engine_count)
            .map(|i| sim.fleet().profile(EngineId::new(i)).name.to_string())
            .collect();
        Reference {
            index,
            results,
            engine_names,
        }
    })
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// One raw request/response round trip over an existing connection.
fn query(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> json::Value {
    stream
        .write_all(format!("{req}\n").as_bytes())
        .expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    json::parse(line.trim_end()).unwrap_or_else(|e| panic!("unparseable response to {req}: {e}"))
}

fn query_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
    stream
        .write_all(format!("{req}\n").as_bytes())
        .expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

/// Polls until `ingest_done`, returning a connected client.
fn await_ingest_done(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let (mut stream, mut reader) = connect(addr);
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let v = query(&mut stream, &mut reader, "{\"cmd\":\"status\"}");
        if v.get("ingest_done").and_then(|d| d.as_bool()) == Some(true) {
            return (stream, reader);
        }
        assert!(Instant::now() < deadline, "ingestion never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn u64s(v: &json::Value, key: &str) -> u64 {
    v.get(key)
        .and_then(|x| x.as_u64())
        .unwrap_or_else(|| panic!("missing u64 member {key}: {v:?}"))
}

fn bools(v: &json::Value, key: &str) -> bool {
    v.get(key)
        .and_then(|x| x.as_bool())
        .unwrap_or_else(|| panic!("missing bool member {key}: {v:?}"))
}

/// Asserts a served `sample` document equals the reference summary.
fn assert_sample_matches(v: &json::Value, s: &SampleSummary<'_>) {
    assert_eq!(
        v.get("hash").and_then(|h| h.as_str()),
        Some(&*s.hash.to_hex())
    );
    assert!(bools(v, "found"));
    assert_eq!(
        v.get("file_type").and_then(|t| t.as_str()),
        Some(&*s.file_type.name())
    );
    assert_eq!(u64s(v, "reports"), s.report_count() as u64);
    assert_eq!(
        u64s(v, "current_positives"),
        u64::from(s.current_positives())
    );
    assert_eq!(u64s(v, "p_min"), u64::from(s.p_min()));
    assert_eq!(u64s(v, "p_max"), u64::from(s.p_max()));
    assert_eq!(u64s(v, "flips"), u64::from(s.flips));
    assert_eq!(bools(v, "multi_report"), s.is_multi_report());
    assert_eq!(bools(v, "stable"), s.is_stable());
    assert_eq!(bools(v, "fresh"), s.is_fresh());
    assert_eq!(bools(v, "in_s"), s.in_s());

    let positives = v
        .get("positives")
        .and_then(|p| p.as_array())
        .expect("positives");
    let served: Vec<u64> = positives.iter().filter_map(json::Value::as_u64).collect();
    let expect: Vec<u64> = s.positives.iter().map(|&p| u64::from(p)).collect();
    assert_eq!(served, expect, "positives timeline for {}", s.hash.to_hex());

    let dates = v
        .get("dates_min")
        .and_then(|d| d.as_array())
        .expect("dates_min");
    let served: Vec<u64> = dates.iter().filter_map(json::Value::as_u64).collect();
    let expect: Vec<u64> = s.dates_min.iter().map(|&d| d as u64).collect();
    assert_eq!(served, expect, "report dates for {}", s.hash.to_hex());

    let stab = v
        .get("stabilization")
        .and_then(|x| x.as_array())
        .expect("stabilization");
    assert_eq!(stab.len(), FIG9_THRESHOLDS.len());
    for (row, &t) in stab.iter().zip(FIG9_THRESHOLDS.iter()) {
        assert_eq!(u64s(row, "threshold"), u64::from(t));
        assert_eq!(
            bools(row, "stabilized"),
            s.stabilized_at(t).unwrap_or(false),
            "threshold {t} for {}",
            s.hash.to_hex()
        );
    }
}

/// Every per-hash answer bit-matches the direct fold, at shards 1/2/4
/// × workers 1/2/8 (ISSUE 7 acceptance).
#[test]
fn per_hash_answers_bit_match_a_direct_fold_at_every_shard_worker_combo() {
    let r = reference();
    assert_eq!(
        r.index.len() as u64,
        SAMPLES,
        "every sample must be indexed"
    );

    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2, 8] {
            let mut config = ServeConfig::new(SAMPLES, SEED);
            config.segment_reports = SEGMENT_REPORTS;
            config.workers = workers;
            config.shards = shards;
            let server = Server::start(config).expect("bind ephemeral port");
            let (mut stream, mut reader) = await_ingest_done(server.addr());

            // `sample`: a stride through the whole population plus the
            // flip-heavy head must match the reference field-for-field.
            let summaries: Vec<_> = r.index.iter().collect();
            for s in summaries
                .iter()
                .step_by(13)
                .chain(r.index.top_flips(5).iter())
            {
                let v = query(
                    &mut stream,
                    &mut reader,
                    &format!("{{\"cmd\":\"sample\",\"hash\":\"{}\"}}", s.hash.to_hex()),
                );
                assert_sample_matches(&v, s);
            }

            // `stabilized`: the head of the population × all 9 Fig. 9
            // thresholds.
            for s in summaries.iter().take(5) {
                for &t in &FIG9_THRESHOLDS {
                    let v = query(
                        &mut stream,
                        &mut reader,
                        &format!(
                            "{{\"cmd\":\"stabilized\",\"hash\":\"{}\",\"threshold\":{t}}}",
                            s.hash.to_hex()
                        ),
                    );
                    assert!(bools(&v, "found"));
                    assert_eq!(u64s(&v, "threshold"), u64::from(t));
                    assert_eq!(bools(&v, "stabilized"), s.stabilized_at(t).unwrap_or(false));
                }
            }

            // `flip_leaders`: hash/flip pairs in the exact total order.
            let v = query(
                &mut stream,
                &mut reader,
                "{\"cmd\":\"flip_leaders\",\"k\":25}",
            );
            let leaders = v
                .get("leaders")
                .and_then(|l| l.as_array())
                .expect("leaders");
            let expect = r.index.top_flips(25);
            assert_eq!(leaders.len(), expect.len());
            for (row, s) in leaders.iter().zip(expect.iter()) {
                assert_eq!(
                    row.get("hash").and_then(|h| h.as_str()),
                    Some(&*s.hash.to_hex())
                );
                assert_eq!(u64s(row, "flips"), u64::from(s.flips));
                assert_eq!(u64s(row, "reports"), s.report_count() as u64);
            }

            // `engine`: scorecard totals against the batch flip matrix.
            for engine in [0usize, 7, 42] {
                let name = &r.engine_names[engine];
                let v = query(
                    &mut stream,
                    &mut reader,
                    &format!("{{\"cmd\":\"engine\",\"name\":{name:?}}}"),
                );
                assert_eq!(v.get("engine").and_then(|n| n.as_str()), Some(&**name));
                let row = &r.results.flips.matrix[engine];
                let flips: u64 = row.iter().map(|c| c.flips).sum();
                let opportunities: u64 = row.iter().map(|c| c.opportunities).sum();
                assert_eq!(u64s(&v, "flips"), flips, "engine {name}");
                assert_eq!(u64s(&v, "opportunities"), opportunities, "engine {name}");
                let types = v.get("types").and_then(|t| t.as_array()).expect("types");
                assert_eq!(
                    types.len(),
                    row.iter().filter(|c| c.opportunities > 0).count()
                );
            }

            server.shutdown();
            server.wait();
        }
    }
}

/// Unknown hashes and malformed per-hash queries earn typed answers,
/// never a panic.
#[test]
fn per_hash_queries_reject_garbage_with_typed_answers() {
    let mut config = ServeConfig::new(50, 0xBEEF);
    config.segment_reports = 1_000;
    config.workers = 1;
    let server = Server::start(config).expect("bind ephemeral port");
    let (mut stream, mut reader) = await_ingest_done(server.addr());

    // A well-formed hash no sample hashes to: found:false, not an error.
    let v = query(
        &mut stream,
        &mut reader,
        "{\"cmd\":\"sample\",\"hash\":\"deadbeefdeadbeefdeadbeefdeadbeef\"}",
    );
    assert_eq!(v.get("found").and_then(|f| f.as_bool()), Some(false));
    assert!(v.get("error").is_none());

    // Everything else: a typed error naming the problem.
    for req in [
        "{\"cmd\":\"sample\"}",                    // hash missing
        "{\"cmd\":\"sample\",\"hash\":\"xyzzy\"}", // not hex
        "{\"cmd\":\"sample\",\"hash\":\"\"}",      // empty
        "{\"cmd\":\"sample\",\"hash\":\"000000000000000000000000000000000\"}", // 33 nibbles
        "{\"cmd\":\"sample\",\"hash\":12}",        // wrong type
        "{\"cmd\":\"stabilized\",\"hash\":\"ff\"}", // threshold missing
        "{\"cmd\":\"stabilized\",\"hash\":\"ff\",\"threshold\":3}", // not a Fig. 9 threshold
        "{\"cmd\":\"engine\",\"name\":\"NoSuchEngine\"}", // unknown engine
        "{\"cmd\":\"engine\"}",                    // name missing
        "{\"cmd\":\"flip_leaders\",\"k\":\"many\"}", // k wrong type
    ] {
        let v = query(&mut stream, &mut reader, req);
        assert!(
            v.get("error").and_then(|e| e.as_str()).is_some(),
            "expected a typed error for {req}, got {v:?}"
        );
    }

    // `k` is forgiving rather than hostile: missing defaults to 10,
    // oversized clamps to the cap — both answered, never errored.
    let v = query(&mut stream, &mut reader, "{\"cmd\":\"flip_leaders\"}");
    assert_eq!(u64s(&v, "k"), 10);
    let v = query(
        &mut stream,
        &mut reader,
        "{\"cmd\":\"flip_leaders\",\"k\":1000000}",
    );
    assert!(u64s(&v, "k") <= 1_000, "k must clamp to the cap: {v:?}");
    assert!(v.get("leaders").and_then(|l| l.as_array()).is_some());

    server.shutdown();
    server.wait();
}

/// Epochs observed on one connection are monotone, and two answers for
/// the same hash at the same epoch are byte-identical even while
/// snapshots swap underneath (the cache must never mix epochs).
#[test]
fn per_hash_answers_are_epoch_consistent_under_live_ingest() {
    let mut config = ServeConfig::new(6_000, 0xE70C);
    config.segment_reports = 250; // many seals → many epoch swaps
    config.workers = 2;
    config.shards = 4;
    let server = Server::start(config).expect("bind ephemeral port");
    let (mut stream, mut reader) = connect(server.addr());

    let probe = reference()
        .index
        .iter()
        .next()
        .expect("nonempty reference")
        .hash;
    let req = format!("{{\"cmd\":\"sample\",\"hash\":\"{}\"}}", probe.to_hex());
    let mut last_epoch = 0u64;
    let mut by_epoch: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let before = query(&mut stream, &mut reader, "{\"cmd\":\"status\"}");
        // Ask twice back-to-back: the second answer may come from the
        // hot-sample cache and must be byte-identical if the epoch held.
        let first = query_raw(&mut stream, &mut reader, &req);
        let second = query_raw(&mut stream, &mut reader, &req);
        let after = query(&mut stream, &mut reader, "{\"cmd\":\"status\"}");

        for raw in [&first, &second] {
            let v = json::parse(raw).expect("parseable sample response");
            let epoch = u64s(&v, "epoch");
            assert!(
                epoch >= u64s(&before, "epoch") && epoch <= u64s(&after, "epoch"),
                "a response must come from a snapshot published between \
                 the statuses bracketing it"
            );
            assert!(
                epoch >= last_epoch,
                "epochs must be monotone on one connection"
            );
            last_epoch = epoch;
            let prior = by_epoch.entry(epoch).or_insert_with(|| raw.clone());
            assert_eq!(
                prior, raw,
                "two answers for one hash at epoch {epoch} must be byte-identical"
            );
        }

        if bools(&after, "ingest_done") {
            break;
        }
        assert!(Instant::now() < deadline, "ingestion never finished");
    }
    assert!(
        by_epoch.len() > 1,
        "the feed must have swapped epochs mid-probe for this test to bite"
    );

    server.shutdown();
    server.wait();
}
