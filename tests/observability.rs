//! Observability invariants: instrumentation must be *write-only*.
//! Turning the metrics sink on or off, or changing the worker count,
//! must never change a single analysis bit — and an instrumented run's
//! `metrics.json` must actually cover the whole pipeline.

use vt_label_dynamics::dynamics::{pipeline, Study};
use vt_label_dynamics::obs::{json, Obs};
use vt_label_dynamics::sim::SimConfig;

const SEED: u64 = 0x0B5E;
const SAMPLES: u64 = 4_000;

/// Debug-formats a `StudyResults` with the (timing-dependent)
/// `stage_timings` field cleared, so two runs can be compared for
/// bit-identity of the analysis payload. f64 Debug formatting is the
/// shortest round-trip representation, so equal strings ⇒ equal bits.
fn analysis_fingerprint(mut r: pipeline::StudyResults) -> String {
    r.stage_timings.clear();
    format!("{r:?}")
}

#[test]
fn results_bit_identical_with_obs_on_and_off() {
    let study = Study::generate(SimConfig::new(SEED, SAMPLES));
    for workers in [1usize, 2, 8] {
        let plain = study.run_with_obs(workers, Obs::noop());
        let obs = Obs::new();
        let observed = study.run_with_obs(workers, &obs);

        assert!(
            !observed.stage_timings.is_empty(),
            "enabled obs must produce stage timings"
        );
        for name in pipeline::stage_names() {
            assert!(
                observed.stage_timings.iter().any(|t| t.name == name),
                "stage {name} missing from stage_timings at workers={workers}"
            );
        }
        assert_eq!(
            analysis_fingerprint(plain),
            analysis_fingerprint(observed),
            "obs on/off changed analysis output at workers={workers}"
        );
    }
}

#[test]
fn counters_invariant_across_worker_counts() {
    let study = Study::generate(SimConfig::new(SEED, SAMPLES));
    let counters_at = |workers: usize| {
        let obs = Obs::new();
        let _ = study.run_with_obs(workers, &obs);
        let mut counters = obs.snapshot().counters;
        counters.sort();
        counters
    };
    let base = counters_at(1);
    assert!(
        base.iter().any(|(name, _)| name == "store/encoded_reports"),
        "expected store counters in {base:?}"
    );
    for workers in [2usize, 8] {
        assert_eq!(
            base,
            counters_at(workers),
            "counter totals must not depend on the worker count"
        );
    }
}

#[test]
fn metrics_json_round_trips_and_covers_the_pipeline() {
    let study = Study::generate(SimConfig::new(SEED, SAMPLES));
    let obs = Obs::new();
    let _ = study.run_with_obs(2, &obs);
    let metrics = obs.snapshot();
    let parsed = json::parse(&metrics.to_json()).expect("metrics.json must be valid JSON");

    let spans = parsed.get("spans").expect("spans section");
    for name in pipeline::stage_names() {
        let key = format!("pipeline/{name}");
        assert!(spans.get(&key).is_some(), "span {key} missing from JSON");
    }
    assert!(spans.get("pipeline/freshdyn").is_some());
    assert!(spans.get("collector/ingest").is_some());

    let counters = parsed.get("counters").expect("counters section");
    assert_eq!(
        counters
            .get("store/encoded_reports")
            .and_then(|v| v.as_u64()),
        metrics.counter("store/encoded_reports"),
        "JSON counter must round-trip the snapshot value"
    );
    assert!(counters.get("collector/accepted").is_some());

    let histograms = parsed.get("histograms").expect("histograms section");
    assert!(
        histograms.get("par/generate/worker_busy_ns").is_some()
            || histograms
                .get("par/correlation_count/worker_busy_ns")
                .is_some(),
        "per-worker busy-time histograms missing from JSON"
    );
}
