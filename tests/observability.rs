//! Observability invariants: instrumentation must be *write-only*.
//! Turning the metrics sink on or off, or changing the worker count,
//! must never change a single analysis bit — and an instrumented run's
//! `metrics.json` must actually cover the whole pipeline.

use vt_label_dynamics::dynamics::{pipeline, Study};
use vt_label_dynamics::obs::{json, Obs};
use vt_label_dynamics::sim::SimConfig;

const SEED: u64 = 0x0B5E;
const SAMPLES: u64 = 4_000;

/// Debug-formats a `StudyResults` with the (timing-dependent)
/// `stage_timings` field cleared, so two runs can be compared for
/// bit-identity of the analysis payload. f64 Debug formatting is the
/// shortest round-trip representation, so equal strings ⇒ equal bits.
fn analysis_fingerprint(mut r: pipeline::StudyResults) -> String {
    r.stage_timings.clear();
    format!("{r:?}")
}

#[test]
fn results_bit_identical_with_obs_on_and_off() {
    let study = Study::generate(SimConfig::new(SEED, SAMPLES));
    for workers in [1usize, 2, 8] {
        let plain = study.run_with_obs(workers, Obs::noop());
        let obs = Obs::new();
        let observed = study.run_with_obs(workers, &obs);

        assert!(
            !observed.stage_timings.is_empty(),
            "enabled obs must produce stage timings"
        );
        for name in pipeline::stage_names() {
            assert!(
                observed.stage_timings.iter().any(|t| t.name == name),
                "stage {name} missing from stage_timings at workers={workers}"
            );
        }
        assert_eq!(
            analysis_fingerprint(plain),
            analysis_fingerprint(observed),
            "obs on/off changed analysis output at workers={workers}"
        );
    }
}

/// Registry-wide worker invariance: every stage's output — compared by
/// Debug fingerprint, which round-trips f64 bits — is identical at
/// workers 1, 2 and 8 when run individually against one shared context.
/// The stage list is tied to `stage_names()` so a newly registered
/// stage cannot silently skip this gate.
#[test]
fn every_registry_stage_is_worker_invariant() {
    use vt_label_dynamics::dynamics::categorize::Categorize;
    use vt_label_dynamics::dynamics::causes::Causes;
    use vt_label_dynamics::dynamics::correlation::Correlation;
    use vt_label_dynamics::dynamics::flips::Flips;
    use vt_label_dynamics::dynamics::intervals::Intervals;
    use vt_label_dynamics::dynamics::landscape::Landscape;
    use vt_label_dynamics::dynamics::metrics::{Metrics, WindowGrowth};
    use vt_label_dynamics::dynamics::stability::Stability;
    use vt_label_dynamics::dynamics::stabilization::Stabilization;
    use vt_label_dynamics::dynamics::{freshdyn, Analysis, AnalysisCtx, TrajectoryTable};

    let study = Study::generate(SimConfig::new(SEED, SAMPLES));
    let ws = study.sim().config().window_start();
    let table = TrajectoryTable::build(study.records(), ws);
    let s = freshdyn::build(study.records(), ws);
    assert!(!s.is_empty(), "study too small to exercise S");

    let run_all = |workers: usize| -> Vec<(&'static str, String)> {
        let ctx = AnalysisCtx::new(study.records(), &table, &s, study.sim().fleet(), ws)
            .with_workers(workers);
        vec![
            (Landscape.name(), format!("{:?}", Landscape.run(&ctx))),
            (Stability.name(), format!("{:?}", Stability.run(&ctx))),
            (Metrics.name(), format!("{:?}", Metrics.run(&ctx))),
            (
                WindowGrowth::default().name(),
                format!("{:?}", WindowGrowth::default().run(&ctx)),
            ),
            (
                Intervals::default().name(),
                format!("{:?}", Intervals::default().run(&ctx)),
            ),
            (
                Categorize::ALL.name(),
                format!("{:?}", Categorize::ALL.run(&ctx)),
            ),
            (
                Categorize::PE.name(),
                format!("{:?}", Categorize::PE.run(&ctx)),
            ),
            (Causes.name(), format!("{:?}", Causes.run(&ctx))),
            (
                Stabilization.name(),
                format!("{:?}", Stabilization.run(&ctx)),
            ),
            (Flips.name(), format!("{:?}", Flips.run(&ctx))),
            (
                Correlation::default().name(),
                format!("{:?}", Correlation::default().run(&ctx)),
            ),
        ]
    };

    let base = run_all(1);
    let names: Vec<&str> = base.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        pipeline::stage_names(),
        "this test must cover every registry stage, in order"
    );
    for workers in [2usize, 8] {
        let other = run_all(workers);
        for ((name, a), (_, b)) in base.iter().zip(&other) {
            assert_eq!(a, b, "stage {name} differs at workers={workers}");
        }
    }
}

#[test]
fn counters_invariant_across_worker_counts() {
    let study = Study::generate(SimConfig::new(SEED, SAMPLES));
    let counters_at = |workers: usize| {
        let obs = Obs::new();
        let _ = study.run_with_obs(workers, &obs);
        let mut counters = obs.snapshot().counters;
        counters.sort();
        counters
    };
    let base = counters_at(1);
    assert!(
        base.iter().any(|(name, _)| name == "store/encoded_reports"),
        "expected store counters in {base:?}"
    );
    for workers in [2usize, 8] {
        assert_eq!(
            base,
            counters_at(workers),
            "counter totals must not depend on the worker count"
        );
    }
}

#[test]
fn metrics_json_round_trips_and_covers_the_pipeline() {
    let study = Study::generate(SimConfig::new(SEED, SAMPLES));
    let obs = Obs::new();
    let _ = study.run_with_obs(2, &obs);
    let metrics = obs.snapshot();
    let parsed = json::parse(&metrics.to_json()).expect("metrics.json must be valid JSON");

    let spans = parsed.get("spans").expect("spans section");
    for name in pipeline::stage_names() {
        let key = format!("pipeline/{name}");
        assert!(spans.get(&key).is_some(), "span {key} missing from JSON");
    }
    assert!(spans.get("pipeline/freshdyn").is_some());
    assert!(spans.get("collector/ingest").is_some());

    let counters = parsed.get("counters").expect("counters section");
    assert_eq!(
        counters
            .get("store/encoded_reports")
            .and_then(|v| v.as_u64()),
        metrics.counter("store/encoded_reports"),
        "JSON counter must round-trip the snapshot value"
    );
    assert!(counters.get("collector/accepted").is_some());

    let histograms = parsed.get("histograms").expect("histograms section");
    assert!(
        histograms.get("par/generate/worker_busy_ns").is_some()
            || histograms
                .get("par/correlation_count/worker_busy_ns")
                .is_some(),
        "per-worker busy-time histograms missing from JSON"
    );
}
