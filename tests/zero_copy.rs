//! Bit-identity gates for the zero-copy segment decode path (ISSUE 8).
//!
//! The contract under test (DESIGN.md §13): folding a sealed store
//! through the streaming arena path — [`IncrementalStudy::fold_store`],
//! which decodes blocks straight into a [`DecodeArena`] and builds the
//! columnar [`TrajectoryTable`] without ever materializing
//! `Vec<ScanReport>` — must produce `StudyResults` and a [`SampleIndex`]
//! **bit-identical** to the row-struct path
//! (`fold_segment(&records_from_store(store))`):
//!
//! * at every fold worker count (1, 2, 8),
//! * at every segment split (1, 3, 17 stores over the same feed),
//! * with one arena reused across all segments,
//! * over damaged inputs (collector quarantine, file-level salvage),
//! * and end to end through `vtld serve`, where the fingerprint verb
//!   must return byte-identical answers at shard counts 1 and 4.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use vt_label_dynamics::obs::json;
use vt_label_dynamics::prelude::*;
use vt_label_dynamics::store::{read_store_salvage, write_store};

/// Splits the records into `splits` contiguous chunks and seals one
/// store per chunk, mirroring `Study::build_store` per segment.
fn chunk_stores(records: &[SampleRecord], splits: usize) -> Vec<ReportStore> {
    let chunk = records.len().div_ceil(splits).max(1);
    records
        .chunks(chunk)
        .map(|c| {
            let store = ReportStore::new();
            for r in c {
                store.append_batch(&r.reports);
            }
            store.seal();
            store
        })
        .collect()
}

/// Folds the same stores through both decode paths and asserts the
/// final `StudyResults` debug representations and sample indexes are
/// identical. Returns the number of samples the arena path saw.
fn assert_paths_identical(
    stores: &[ReportStore],
    fleet: &EngineFleet,
    window_start: vt_label_dynamics::model::Timestamp,
    workers: usize,
    tag: &str,
) -> usize {
    let mut via_records = IncrementalStudy::new(fleet, window_start)
        .with_workers(workers)
        .with_index();
    let mut via_store = IncrementalStudy::new(fleet, window_start)
        .with_workers(workers)
        .with_index();
    let mut arena = DecodeArena::new();
    let mut folded = 0;
    for store in stores {
        let records = records_from_store(store);
        via_records.fold_segment(&records, Obs::noop());
        folded += via_store.fold_store(store, &mut arena, Obs::noop());
    }
    let a = via_records.results(Vec::new(), Obs::noop());
    let b = via_store.results(Vec::new(), Obs::noop());
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "StudyResults diverged ({tag})"
    );
    assert_eq!(
        via_records.index(),
        via_store.index(),
        "SampleIndex diverged ({tag})"
    );
    folded
}

/// The core grid: workers × segment splits over a clean 3k-sample
/// study, one `DecodeArena` reused across every segment of a run.
#[test]
fn fold_store_bit_identical_to_row_path_at_any_parallelism() {
    let study = Study::generate(SimConfig::new(0x2E80C0, 3_000));
    let fleet = study.sim().fleet();
    let window_start = study.sim().config().window_start();
    for workers in [1usize, 2, 8] {
        for splits in [1usize, 3, 17] {
            let stores = chunk_stores(study.records(), splits);
            let folded = assert_paths_identical(
                &stores,
                fleet,
                window_start,
                workers,
                &format!("workers={workers} splits={splits}"),
            );
            assert_eq!(folded, study.records().len());
        }
    }
}

/// A corrupt feed: the collector quarantines damaged entries and the
/// surviving store must fold identically through both paths.
#[test]
fn quarantined_store_folds_identically() {
    const SAMPLES: u64 = 1_500;
    let sim = VirusTotalSim::new(SimConfig::new(0xBADF00D, SAMPLES));
    let plan = FaultPlan::clean(7)
        .with_duplicates(0.1)
        .with_corruption(0.05);
    let feed = FaultyFeed::from_sim(&sim, 0..SAMPLES, plan);
    let outcome = Collector::default().run(feed);
    assert!(outcome.stats.quarantined > 0, "plan injected no corruption");
    let records = records_from_store(&outcome.store);
    let folded = assert_paths_identical(
        std::slice::from_ref(&outcome.store),
        sim.fleet(),
        sim.config().window_start(),
        2,
        "quarantine",
    );
    assert_eq!(folded, records.len());
}

/// Mid-file corruption: salvage drops the damaged blocks, and whatever
/// survives must fold identically through both paths.
#[test]
fn salvaged_store_folds_identically() {
    let study = Study::generate(SimConfig::new(0x5A17A6E, 2_000));
    let store = study.build_store();
    let mut buf = Vec::new();
    write_store(&store, &mut buf).expect("write store");
    for frac in [3, 2] {
        let site = buf.len() / frac;
        buf[site] ^= 0x40;
    }
    let (salvaged, recovery) =
        read_store_salvage(&mut buf.as_slice()).expect("salvage a damaged file");
    assert!(salvaged.report_count() > 0);
    assert!(salvaged.report_count() <= store.report_count());
    let _ = recovery; // damage location decides how many blocks drop
    let folded = assert_paths_identical(
        std::slice::from_ref(&salvaged),
        study.sim().fleet(),
        study.sim().config().window_start(),
        1,
        "salvage",
    );
    assert_eq!(folded as u64, salvaged.sample_count());
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn query_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
    stream
        .write_all(format!("{req}\n").as_bytes())
        .expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

fn await_ingest_done(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let (mut stream, mut reader) = connect(addr);
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let line = query_raw(&mut stream, &mut reader, "{\"cmd\":\"status\"}");
        let v = json::parse(&line).unwrap_or_else(|e| panic!("unparseable status: {e}"));
        if v.get("ingest_done").and_then(|d| d.as_bool()) == Some(true) {
            return (stream, reader);
        }
        assert!(Instant::now() < deadline, "ingestion never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// End to end through the daemon: the shard workers now fold segments
/// through `fold_store`, so the published fingerprint must still be
/// byte-identical across shard counts.
#[test]
fn serve_fingerprint_identical_across_shard_counts() {
    const SAMPLES: u64 = 1_000;
    const SEED: u64 = 0xF1A6;
    let mut fingerprints = Vec::new();
    for shards in [1usize, 4] {
        let mut config = ServeConfig::new(SAMPLES, SEED);
        config.segment_reports = 300;
        config.workers = 2;
        config.shards = shards;
        let server = Server::start(config).expect("bind ephemeral port");
        let (mut stream, mut reader) = await_ingest_done(server.addr());
        let line = query_raw(&mut stream, &mut reader, "{\"cmd\":\"fingerprint\"}");
        let v = json::parse(&line).unwrap_or_else(|e| panic!("unparseable fingerprint: {e}"));
        // The epoch counts publishes and legitimately varies with the
        // shard count; the two digests are the bit-identity gate.
        let digest = |key: &str| {
            v.get(key)
                .and_then(|f| f.as_str())
                .unwrap_or_else(|| panic!("missing {key} in {line}"))
                .to_string()
        };
        fingerprints.push((digest("fingerprint"), digest("rho_fnv")));
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "shard count visible in the published fingerprint"
    );
}
