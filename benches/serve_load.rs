//! Load generator for the hardened `vtld serve` daemon.
//!
//! Not a criterion bench (`harness = false`): it boots real in-process
//! daemons on ephemeral ports and measures the three numbers the
//! robustness work is accountable for, writing them to
//! `BENCH_serve.json` at the repo root:
//!
//! * **Ingest throughput at shards 1 / 2 / 4** — wall-clock from start
//!   to `ingest_done`, in-memory and (at shards 2) with the durable
//!   fsync-per-seal segment log, so the durability tax is visible.
//! * **Clients vs latency** — p50/p99 request latency over persistent
//!   connections at 1 / 8 / 32 concurrent clients against a live
//!   daemon.
//! * **Overload shedding** — 32 one-shot clients against an 8-slot
//!   admission gate: how many were served vs shed with a typed
//!   `overloaded` response (shed responses are also timed — shedding
//!   must be cheap).
//! * **Alert-detector overhead** — ingest wall-clock with the
//!   streaming drift detectors on vs off at shards 2: the detectors
//!   ride every segment fold, and the acceptance bar is staying within
//!   5% of the detectors-off rate.
//! * **Zipf per-hash reads under live ingest** — 8 reader clients issue
//!   `sample` queries with Zipf(1.0)-skewed hash popularity *while* the
//!   daemon ingests and swaps epochs underneath: p50/p99 read latency
//!   plus the hot-sample cache hit rate (slot-aware invalidation: an
//!   epoch swap only evicts the changed ingest slot's entries, so the
//!   hit rate prices the cache under churn, not at steady state).
//!
//! Run with: `cargo bench --bench serve_load`

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use vt_label_dynamics::obs::json;
use vt_label_dynamics::prelude::*;

const SAMPLES: u64 = 30_000;
const SEED: u64 = 0x10AD;
const SEGMENT_REPORTS: u64 = 2_000;

fn base_config(shards: usize) -> ServeConfig {
    let mut config = ServeConfig::new(SAMPLES, SEED);
    config.segment_reports = SEGMENT_REPORTS;
    config.workers = 2;
    config.shards = shards;
    config
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, cmd: &str) -> json::Value {
    stream
        .write_all(format!("{{\"cmd\":\"{cmd}\"}}\n").as_bytes())
        .expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    json::parse(line.trim_end()).expect("parseable response")
}

fn wait_done(addr: SocketAddr) {
    let (mut stream, mut reader) = connect(addr);
    loop {
        let v = ask(&mut stream, &mut reader, "status");
        if v.get("ingest_done").and_then(|d| d.as_bool()) == Some(true) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Boots a daemon, times start → `ingest_done`, shuts it down. Returns
/// (elapsed, samples/sec).
fn ingest_run(config: ServeConfig) -> (Duration, f64) {
    let started = Instant::now();
    let server = Server::start(config).expect("start server");
    wait_done(server.addr());
    let elapsed = started.elapsed();
    server.shutdown();
    server.wait();
    (elapsed, SAMPLES as f64 / elapsed.as_secs_f64())
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// `clients` persistent connections, each issuing `rounds` status
/// requests; returns sorted per-request latencies in microseconds.
fn latency_run(addr: SocketAddr, clients: usize, rounds: usize) -> Vec<u64> {
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                let mut lat = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    let t0 = Instant::now();
                    let v = ask(&mut stream, &mut reader, "status");
                    lat.push(t0.elapsed().as_micros() as u64);
                    assert!(v.get("epoch").is_some());
                }
                lat
            })
        })
        .collect();
    let mut all: Vec<u64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("latency client"))
        .collect();
    all.sort_unstable();
    all
}

/// One-shot flood against a small admission gate: every thread
/// connects, sends one request, reads one response. Returns
/// (served, shed, sorted shed-response latencies in µs).
fn overload_run(addr: SocketAddr, clients: usize) -> (u64, u64, Vec<u64>) {
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    return (0u64, 0u64, None);
                };
                if stream.write_all(b"{\"cmd\":\"status\"}\n").is_err() {
                    return (0, 0, None);
                }
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                if reader.read_line(&mut line).map(|n| n == 0).unwrap_or(true) {
                    return (0, 0, None);
                }
                let v = json::parse(line.trim_end()).expect("parseable response");
                let us = t0.elapsed().as_micros() as u64;
                if v.get("overloaded").and_then(|o| o.as_bool()) == Some(true) {
                    (0, 1, Some(us))
                } else {
                    (1, 0, None)
                }
            })
        })
        .collect();
    let mut served = 0;
    let mut shed = 0;
    let mut shed_us = Vec::new();
    for t in threads {
        let (s, r, us) = t.join().expect("flood client");
        served += s;
        shed += r;
        shed_us.extend(us);
    }
    shed_us.sort_unstable();
    (served, shed, shed_us)
}

/// Zipf(1.0) sampler over `0..n`: rank `r + 1` is drawn with weight
/// `1/(r + 1)` — the classic hot-key skew for cache benchmarks.
struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 1..=n {
            total += 1.0 / r as f64;
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { cum }
    }

    fn draw(&self, u: f64) -> usize {
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }
}

/// Deterministic per-thread RNG (splitmix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `readers` persistent connections issue Zipf-skewed `sample` queries
/// until ingestion completes. Returns (sorted latencies µs, requests,
/// found answers).
fn zipf_read_run(
    addr: SocketAddr,
    hashes: Arc<Vec<String>>,
    zipf: Arc<Zipf>,
    readers: usize,
) -> (Vec<u64>, u64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..readers)
        .map(|r| {
            let (hashes, zipf, stop) = (Arc::clone(&hashes), Arc::clone(&zipf), Arc::clone(&stop));
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                let mut state = 0x5EED ^ ((r as u64) << 17);
                let mut lat = Vec::new();
                let mut found = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                    let hash = &hashes[zipf.draw(u)];
                    let t0 = Instant::now();
                    stream
                        .write_all(
                            format!("{{\"cmd\":\"sample\",\"hash\":\"{hash}\"}}\n").as_bytes(),
                        )
                        .expect("write sample query");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read sample response");
                    lat.push(t0.elapsed().as_micros() as u64);
                    let v = json::parse(line.trim_end()).expect("parseable response");
                    if v.get("found").and_then(|f| f.as_bool()) == Some(true) {
                        found += 1;
                    }
                }
                (lat, found)
            })
        })
        .collect();
    wait_done(addr);
    stop.store(true, Ordering::Relaxed);
    let mut all = Vec::new();
    let mut found = 0;
    for t in threads {
        let (lat, f) = t.join().expect("zipf reader");
        all.extend(lat);
        found += f;
    }
    let requests = all.len() as u64;
    all.sort_unstable();
    (all, requests, found)
}

/// Days-since-epoch → (year, month, day), civil calendar.
fn civil_date() -> (i64, u32, u32) {
    let days = (SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("after 1970")
        .as_secs()
        / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("serve_load: {SAMPLES} samples, seed {SEED:#x}, {cpus} cpu(s)");

    // ---- ingest throughput at shards 1 / 2 / 4 ----------------------
    let mut throughput = Vec::new();
    for shards in [1usize, 2, 4] {
        let (elapsed, rate) = ingest_run(base_config(shards));
        eprintln!("  ingest shards={shards}: {elapsed:?} ({rate:.0} samples/s)");
        throughput.push((shards, elapsed, rate));
    }

    // ---- durable ingest (fsync per seal) at shards 2 ----------------
    let wal = std::env::temp_dir().join(format!("vtld-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal);
    let mut durable_config = base_config(2);
    durable_config.data_dir = Some(wal.clone());
    let (durable_elapsed, durable_rate) = ingest_run(durable_config);
    eprintln!("  ingest shards=2 durable: {durable_elapsed:?} ({durable_rate:.0} samples/s)");
    let _ = std::fs::remove_dir_all(&wal);

    // ---- alert-detector overhead ------------------------------------
    let mut detectors_off = base_config(2);
    detectors_off.alerts = false;
    let (off_elapsed, off_rate) = ingest_run(detectors_off);
    let (on_elapsed, on_rate) = ingest_run(base_config(2));
    let alert_overhead = on_elapsed.as_secs_f64() / off_elapsed.as_secs_f64();
    eprintln!(
        "  ingest shards=2 detectors off: {off_elapsed:?} ({off_rate:.0} samples/s), \
         on: {on_elapsed:?} ({on_rate:.0} samples/s) — overhead ×{alert_overhead:.3}"
    );

    // ---- clients vs latency against a live daemon -------------------
    let server = Server::start(base_config(2)).expect("start latency server");
    let addr = server.addr();
    wait_done(addr);
    let mut latency = Vec::new();
    for clients in [1usize, 8, 32] {
        let lat = latency_run(addr, clients, 200);
        let (p50, p99) = (percentile_us(&lat, 0.50), percentile_us(&lat, 0.99));
        eprintln!(
            "  latency clients={clients}: p50={p50}us p99={p99}us ({} reqs)",
            lat.len()
        );
        latency.push((clients, p50, p99, lat.len()));
    }
    server.shutdown();
    server.wait();

    // ---- overload shedding ------------------------------------------
    let mut shed_config = base_config(1);
    shed_config.samples = 500; // tiny feed; the gate is what's measured
    shed_config.max_clients = 8;
    let server = Server::start(shed_config).expect("start overload server");
    let addr = server.addr();
    wait_done(addr);
    let (served, shed, shed_us) = overload_run(addr, 32);
    let shed_p99 = percentile_us(&shed_us, 0.99);
    eprintln!("  overload 32 clients vs cap 8: served={served} shed={shed} shed_p99={shed_p99}us");
    server.shutdown();
    server.wait();

    // ---- Zipf per-hash reads mixed with live ingest -----------------
    let sim = VirusTotalSim::new(SimConfig::new(SEED, SAMPLES));
    let hashes: Arc<Vec<String>> = Arc::new(
        (0..SAMPLES)
            .map(|o| sim.population().sample(o).hash.to_hex())
            .collect(),
    );
    let zipf = Arc::new(Zipf::new(SAMPLES as usize));
    let server = Server::start(base_config(2)).expect("start zipf server");
    let addr = server.addr();
    let (read_lat, read_reqs, read_found) = zipf_read_run(addr, hashes, zipf, 8);
    let (read_p50, read_p99) = (
        percentile_us(&read_lat, 0.50),
        percentile_us(&read_lat, 0.99),
    );
    let (mut stream, mut reader) = connect(addr);
    let status = ask(&mut stream, &mut reader, "status");
    let cache_hits = status
        .get("cache_hits")
        .and_then(|h| h.as_u64())
        .unwrap_or(0);
    let cache_misses = status
        .get("cache_misses")
        .and_then(|m| m.as_u64())
        .unwrap_or(0);
    let hit_rate = if cache_hits + cache_misses == 0 {
        0.0
    } else {
        cache_hits as f64 / (cache_hits + cache_misses) as f64
    };
    drop((stream, reader));
    server.shutdown();
    server.wait();
    eprintln!(
        "  zipf reads 8 clients: p50={read_p50}us p99={read_p99}us \
         ({read_reqs} reqs, {read_found} found, hit rate {hit_rate:.3})"
    );

    // ---- BENCH_serve.json -------------------------------------------
    let (y, m, d) = civil_date();
    let throughput_json: Vec<String> = throughput
        .iter()
        .map(|(shards, elapsed, rate)| {
            format!(
                "    \"{shards}\": {{ \"ingest_ms\": {}, \"samples_per_s\": {:.0} }}",
                elapsed.as_millis(),
                rate
            )
        })
        .collect();
    let latency_json: Vec<String> = latency
        .iter()
        .map(|(clients, p50, p99, reqs)| {
            format!(
                "    \"{clients}\": {{ \"p50_us\": {p50}, \"p99_us\": {p99}, \"requests\": {reqs} }}"
            )
        })
        .collect();
    let doc = format!(
        "{{\n\
         \x20 \"bench\": \"benches/serve_load.rs\",\n\
         \x20 \"command\": \"cargo bench --bench serve_load\",\n\
         \x20 \"date\": \"{y:04}-{m:02}-{d:02}\",\n\
         \x20 \"machine\": {{\n\
         \x20   \"cpus\": {cpus},\n\
         \x20   \"note\": \"shard workers contend for the same cores as the feed simulator and the fold threads, so shard counts > available cores measure coordination overhead, not scaling; the acceptance gate for sharding is bit-identity (tests/serve_chaos.rs), not speedup\"\n\
         \x20 }},\n\
         \x20 \"dataset\": {{ \"samples\": {SAMPLES}, \"seed\": \"{SEED:#x}\", \"segment_reports\": {SEGMENT_REPORTS}, \"fold_workers\": 2 }},\n\
         \x20 \"ingest_throughput_by_shards\": {{\n{}\n  }},\n\
         \x20 \"durable_ingest_shards_2\": {{ \"ingest_ms\": {}, \"samples_per_s\": {:.0}, \"note\": \"segment log on, fsync file+dir per seal\" }},\n\
         \x20 \"alert_overhead\": {{ \"detectors_off_ms\": {}, \"detectors_on_ms\": {}, \"overhead_ratio\": {alert_overhead:.4}, \"note\": \"streaming drift detectors folded into every segment seal; acceptance bar is a ratio within 1.05 — the detector fold itself is gated in bench_drift\" }},\n\
         \x20 \"latency_by_clients\": {{\n{}\n  }},\n\
         \x20 \"overload\": {{ \"clients\": 32, \"max_clients\": 8, \"served\": {served}, \"shed\": {shed}, \"shed_p99_us\": {shed_p99} }},\n\
         \x20 \"zipf_read\": {{ \"skew\": 1.0, \"clients\": 8, \"cache_samples\": 1024, \"requests\": {read_reqs}, \"found\": {read_found}, \"p50_us\": {read_p50}, \"p99_us\": {read_p99}, \"cache_hits\": {cache_hits}, \"cache_misses\": {cache_misses}, \"hit_rate\": {hit_rate:.4}, \"note\": \"per-hash `sample` queries during live ingest; slot-aware invalidation: an epoch swap only evicts the changed ingest slot's cache entries and splices the new epoch into surviving hits, so the hit rate prices the cache under churn\" }}\n\
         }}\n",
        throughput_json.join(",\n"),
        durable_elapsed.as_millis(),
        durable_rate,
        off_elapsed.as_millis(),
        on_elapsed.as_millis(),
        latency_json.join(",\n"),
    );
    std::fs::write("BENCH_serve.json", &doc).expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");
    print!("{doc}");
}
